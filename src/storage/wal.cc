#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "verify/fault_injector.h"

namespace aggcache {
namespace {

constexpr uint32_t kRecordMagic = 0x57414C52;  // "WALR"
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 1;
constexpr size_t kMaxPayloadBytes = 64u << 20;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

bool ValidRecordType(uint8_t t) {
  return t >= static_cast<uint8_t>(WalRecordType::kInsert) &&
         t <= static_cast<uint8_t>(WalRecordType::kMergeGroup);
}

/// Builds the on-disk frame for one record.
std::string EncodeFrame(uint64_t lsn, Tid tid, WalRecordType type,
                        const std::string& payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size() + 4);
  PutU32(&frame, kRecordMagic);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, lsn);
  PutU64(&frame, static_cast<uint64_t>(tid));
  frame.push_back(static_cast<char>(type));
  frame += payload;
  // CRC over everything after the magic (header fields + payload).
  uint32_t crc = Crc32(frame.data() + 4, frame.size() - 4);
  PutU32(&frame, crc);
  return frame;
}

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* WalSyncPolicyToString(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kOff:
      return "off";
    case WalSyncPolicy::kAsync:
      return "async";
    case WalSyncPolicy::kSync:
      return "sync";
  }
  return "unknown";
}

StatusOr<WalSyncPolicy> ParseWalSyncPolicy(const std::string& text) {
  if (text == "off" || text == "0") return WalSyncPolicy::kOff;
  if (text == "async") return WalSyncPolicy::kAsync;
  if (text == "sync" || text == "1") return WalSyncPolicy::kSync;
  return Status::InvalidArgument("AGGCACHE_WAL must be off|async|sync, got '" +
                                 text + "'");
}

const char* WalRecordTypeToString(WalRecordType type) {
  switch (type) {
    case WalRecordType::kInsert:
      return "insert";
    case WalRecordType::kUpdate:
      return "update";
    case WalRecordType::kDelete:
      return "delete";
    case WalRecordType::kScopeBegin:
      return "scope_begin";
    case WalRecordType::kScopeCommit:
      return "scope_commit";
    case WalRecordType::kCreateTable:
      return "create_table";
    case WalRecordType::kSplitHotCold:
      return "split_hot_cold";
    case WalRecordType::kAgingGroup:
      return "aging_group";
    case WalRecordType::kMergeGroup:
      return "merge_group";
  }
  return "unknown";
}

std::string EncodeWalValue(const Value& v) {
  if (v.is_null()) return "n";
  if (v.is_int64()) {
    return StrFormat("i%lld", static_cast<long long>(v.AsInt64()));
  }
  if (v.is_double()) return StrFormat("d%.17g", v.AsDouble());
  std::string out = "\"";
  for (char c : v.AsString()) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

StatusOr<Value> DecodeWalValue(std::istream& in) {
  in >> std::ws;
  int first = in.peek();
  if (first == EOF) return Status::InvalidArgument("missing WAL value token");
  if (first == '"') {
    in.get();
    std::string out;
    int c;
    while ((c = in.get()) != EOF) {
      if (c == '\\') {
        int escaped = in.get();
        switch (escaped) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          default:
            return Status::InvalidArgument("bad escape in WAL string value");
        }
      } else if (c == '"') {
        return Value(std::move(out));
      } else {
        out += static_cast<char>(c);
      }
    }
    return Status::InvalidArgument("unterminated WAL string value");
  }
  std::string token;
  if (!(in >> token) || token.empty()) {
    return Status::InvalidArgument("missing WAL value token");
  }
  if (token == "n") return Value();
  const char* body = token.c_str() + 1;
  char* end = nullptr;
  if (token[0] == 'i') {
    long long v = std::strtoll(body, &end, 10);
    if (end == body || *end != '\0') {
      return Status::InvalidArgument("malformed WAL int token '" + token + "'");
    }
    return Value(static_cast<int64_t>(v));
  }
  if (token[0] == 'd') {
    double v = std::strtod(body, &end);
    if (end == body || *end != '\0') {
      return Status::InvalidArgument("malformed WAL double token '" + token +
                                     "'");
    }
    return Value(v);
  }
  return Status::InvalidArgument("unknown WAL value token '" + token + "'");
}

// --- WriteAheadLog ----------------------------------------------------------

WriteAheadLog::WriteAheadLog(std::string dir, const Options& options,
                             uint64_t next_lsn)
    : dir_(std::move(dir)), options_(options), next_lsn_(next_lsn) {}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& dir, const Options& options, uint64_t next_lsn) {
  if (next_lsn == 0) {
    return Status::InvalidArgument("WAL lsns start at 1");
  }
  auto wal = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(dir, options, next_lsn));
  if (options.policy != WalSyncPolicy::kOff) {
    std::lock_guard<std::mutex> lock(wal->mu_);
    RETURN_IF_ERROR(wal->OpenSegmentLocked(next_lsn));
    if (options.policy == WalSyncPolicy::kAsync) {
      wal->flusher_ = std::thread([w = wal.get()] { w->FlusherLoop(); });
    }
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_flusher_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (!poisoned_) {
      ::fdatasync(fd_);
    }
    ::close(fd_);
    fd_ = -1;
  }
}

Status WriteAheadLog::OpenSegmentLocked(uint64_t start_lsn) {
  if (fd_ >= 0) {
    ::fdatasync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  std::string path =
      dir_ + "/" +
      StrFormat("wal-%020llu.log", static_cast<unsigned long long>(start_lsn));
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("open('%s') failed: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  fd_ = fd;
  active_path_ = path;
  bytes_since_rotate_.store(0, std::memory_order_relaxed);
  return Status::Ok();
}

Status WriteAheadLog::WriteAllLocked(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t written = ::write(fd_, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("WAL write failed: %s",
                                        std::strerror(errno)));
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  return Status::Ok();
}

void WriteAheadLog::Poison(const std::string& why) {
  poisoned_ = true;
  if (poison_reason_.empty()) poison_reason_ = why;
  sync_cv_.notify_all();
}

Status WriteAheadLog::SyncWrittenLocked() {
  if (fd_ < 0) return Status::Ok();
  uint64_t target = written_lsn_;
  if (durable_lsn_ >= target) return Status::Ok();
  Stopwatch watch;
  BackgroundSpan sync_span(SpanKind::kWalSync);
  if (::fdatasync(fd_) != 0) {
    Poison(StrFormat("fdatasync failed: %s", std::strerror(errno)));
    return Status::Internal(poison_reason_);
  }
  durable_lsn_ = target;
  EngineMetrics::Get().wal_syncs->Increment();
  EngineMetrics::Get().wal_sync_us->Observe(
      static_cast<uint64_t>(watch.ElapsedMillis() * 1000.0));
  return Status::Ok();
}

Status WriteAheadLog::Append(WalRecordType type, Tid tid,
                             const std::string& payload) {
  if (options_.policy == WalSyncPolicy::kOff) return Status::Ok();
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("WAL payload too large");
  }
  FaultInjector& injector = FaultInjector::Global();
  // Crash point: the process dies before the record reaches the file. The
  // statement's effect is lost on disk, so it must report failure.
  Status crash = injector.MaybeFail("wal.append");
  if (!crash.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    Poison("simulated crash at wal.append");
    return crash;
  }
  // Crash point: the process dies mid-write, leaving a torn record for the
  // recovery scan to stop at.
  Status torn = injector.MaybeFail("wal.append.torn");

  uint64_t lsn;
  size_t frame_bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (poisoned_) {
      return Status::FailedPrecondition("WAL is dead: " + poison_reason_);
    }
    lsn = next_lsn_.load(std::memory_order_relaxed);
    std::string frame = EncodeFrame(lsn, tid, type, payload);
    if (!torn.ok()) {
      // Write only the first half of the frame, then die.
      size_t half = frame.size() / 2;
      (void)WriteAllLocked(frame.data(), half);
      Poison("simulated crash at wal.append.torn");
      return torn;
    }
    Status written = WriteAllLocked(frame.data(), frame.size());
    if (!written.ok()) {
      Poison(std::string(written.message()));
      return written;
    }
    next_lsn_.store(lsn + 1, std::memory_order_relaxed);
    written_lsn_ = lsn;
    frame_bytes = frame.size();
    bytes_since_rotate_.fetch_add(frame_bytes, std::memory_order_relaxed);
  }
  const EngineMetrics& m = EngineMetrics::Get();
  m.wal_appends->Increment();
  m.wal_bytes->Increment(frame_bytes);
  RecordFlightEvent(FlightEventType::kWalAppend, lsn, frame_bytes,
                    WalRecordTypeToString(type));

  if (options_.policy == WalSyncPolicy::kAsync) {
    flusher_cv_.notify_one();
    return Status::Ok();
  }

  // kSync: group commit. The first appender to arrive becomes the leader
  // and fdatasyncs everything written so far; later arrivals wait until
  // durable_lsn_ covers their record.
  std::unique_lock<std::mutex> lock(mu_);
  while (durable_lsn_ < lsn && !poisoned_) {
    if (!sync_in_progress_) {
      sync_in_progress_ = true;
      // Crash point: kill after write(2) but before the ack. The bytes are
      // in the OS (and survive a process kill), so the statement is treated
      // as committed — but the engine is dead from here on.
      Status killed = injector.MaybeFail("wal.sync");
      if (!killed.ok()) {
        Poison("simulated crash at wal.sync");
        sync_in_progress_ = false;
        sync_cv_.notify_all();
        return Status::Ok();
      }
      Status synced = SyncWrittenLocked();
      sync_in_progress_ = false;
      sync_cv_.notify_all();
      return synced;
    }
    sync_cv_.wait(lock);
  }
  if (durable_lsn_ >= lsn) return Status::Ok();
  return Status::FailedPrecondition("WAL is dead: " + poison_reason_);
}

Status WriteAheadLog::Sync() {
  if (options_.policy == WalSyncPolicy::kOff) return Status::Ok();
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::FailedPrecondition("WAL is dead: " + poison_reason_);
  }
  return SyncWrittenLocked();
}

void WriteAheadLog::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_flusher_) {
    flusher_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.async_interval_ms));
    if (stop_flusher_ || poisoned_) continue;
    (void)SyncWrittenLocked();
  }
}

Status WriteAheadLog::RotateAndTruncate(uint64_t keep_from_lsn) {
  if (options_.policy == WalSyncPolicy::kOff) return Status::Ok();
  namespace fs = std::filesystem;
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::FailedPrecondition("WAL is dead: " + poison_reason_);
  }
  RETURN_IF_ERROR(SyncWrittenLocked());
  RETURN_IF_ERROR(OpenSegmentLocked(next_lsn_.load(std::memory_order_relaxed)));

  // Collect (start lsn, path) of every segment, sorted; a segment may be
  // deleted when the *next* segment starts at or below the keep boundary —
  // then all of its records are < keep_from_lsn.
  std::vector<std::pair<uint64_t, fs::path>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    auto start = SegmentStartLsn(entry.path().filename().string());
    if (start.has_value()) segments.emplace_back(*start, entry.path());
  }
  if (ec) {
    return Status::Internal("WAL dir scan failed: " + ec.message());
  }
  std::sort(segments.begin(), segments.end());
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first <= keep_from_lsn &&
        segments[i].second.string() != active_path_) {
      fs::remove(segments[i].second, ec);
    }
  }
  return Status::Ok();
}

void WriteAheadLog::SimulateCrash() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_flusher_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(mu_);
  Poison("simulated crash");
  if (fd_ >= 0) {
    ::close(fd_);  // No final sync: exactly what a SIGKILL leaves behind.
    fd_ = -1;
  }
}

std::optional<uint64_t> WriteAheadLog::SegmentStartLsn(
    const std::string& filename) {
  constexpr const char* kPrefix = "wal-";
  constexpr const char* kSuffix = ".log";
  if (filename.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) {
    return std::nullopt;
  }
  if (filename.rfind(kPrefix, 0) != 0) return std::nullopt;
  if (filename.substr(filename.size() - 4) != kSuffix) return std::nullopt;
  std::string digits =
      filename.substr(std::strlen(kPrefix),
                      filename.size() - std::strlen(kPrefix) - 4);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

StatusOr<WalReadResult> WriteAheadLog::ReadDir(const std::string& dir) {
  namespace fs = std::filesystem;
  WalReadResult result;
  std::vector<std::pair<uint64_t, fs::path>> segments;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return result;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    auto start = SegmentStartLsn(entry.path().filename().string());
    if (start.has_value()) segments.emplace_back(*start, entry.path());
  }
  if (ec) {
    return Status::Internal("WAL dir scan failed: " + ec.message());
  }
  std::sort(segments.begin(), segments.end());

  uint64_t expected_lsn = 0;  // 0 = not yet pinned by the first record.
  for (const auto& [start_lsn, path] : segments) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      result.clean = false;
      result.tail_error = "cannot open " + path.string();
      result.tail_file = path.string();
      result.tail_valid_bytes = 0;
      return result;
    }
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    size_t offset = 0;
    auto stop = [&](const std::string& why) {
      result.clean = false;
      result.tail_error =
          StrFormat("%s at %s+%zu", why.c_str(),
                    path.filename().string().c_str(), offset);
      result.tail_file = path.string();
      result.tail_valid_bytes = offset;
    };
    while (offset < contents.size()) {
      const auto* base =
          reinterpret_cast<const unsigned char*>(contents.data()) + offset;
      size_t remaining = contents.size() - offset;
      if (remaining < kHeaderBytes) {
        stop("torn record header");
        return result;
      }
      uint32_t magic = GetU32(base);
      if (magic != kRecordMagic) {
        stop("bad record magic");
        return result;
      }
      uint32_t len = GetU32(base + 4);
      uint64_t lsn = GetU64(base + 8);
      uint64_t tid = GetU64(base + 16);
      uint8_t type = base[24];
      if (len > kMaxPayloadBytes) {
        stop("implausible record length");
        return result;
      }
      size_t frame = kHeaderBytes + len + 4;
      if (remaining < frame) {
        stop("torn record payload");
        return result;
      }
      uint32_t stored_crc = GetU32(base + kHeaderBytes + len);
      uint32_t actual_crc = Crc32(base + 4, kHeaderBytes - 4 + len);
      if (stored_crc != actual_crc) {
        stop("record checksum mismatch");
        return result;
      }
      if (!ValidRecordType(type)) {
        stop("unknown record type");
        return result;
      }
      if (expected_lsn == 0) {
        if (lsn < start_lsn) {
          stop("record lsn below segment start");
          return result;
        }
        expected_lsn = lsn;
      }
      if (lsn != expected_lsn) {
        stop(lsn < expected_lsn ? "duplicate or out-of-order record lsn"
                                : "gap in record lsns");
        return result;
      }
      WalRecord record;
      record.lsn = lsn;
      record.tid = static_cast<Tid>(tid);
      record.type = static_cast<WalRecordType>(type);
      record.payload.assign(contents, kHeaderBytes + offset, len);
      result.records.push_back(std::move(record));
      ++expected_lsn;
      offset += frame;
      result.tail_file = path.string();
      result.tail_valid_bytes = offset;
    }
  }
  return result;
}

}  // namespace aggcache
