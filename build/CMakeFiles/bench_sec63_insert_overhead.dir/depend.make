# Empty dependencies file for bench_sec63_insert_overhead.
# This may be replaced when dependencies are built.
