file(REMOVE_RECURSE
  "CMakeFiles/bench_sec63_insert_overhead.dir/bench/bench_sec63_insert_overhead.cpp.o"
  "CMakeFiles/bench_sec63_insert_overhead.dir/bench/bench_sec63_insert_overhead.cpp.o.d"
  "bench/bench_sec63_insert_overhead"
  "bench/bench_sec63_insert_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_insert_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
