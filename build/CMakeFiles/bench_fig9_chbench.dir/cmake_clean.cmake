file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_chbench.dir/bench/bench_fig9_chbench.cpp.o"
  "CMakeFiles/bench_fig9_chbench.dir/bench/bench_fig9_chbench.cpp.o.d"
  "bench/bench_fig9_chbench"
  "bench/bench_fig9_chbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_chbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
