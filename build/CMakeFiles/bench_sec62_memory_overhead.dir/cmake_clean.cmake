file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_memory_overhead.dir/bench/bench_sec62_memory_overhead.cpp.o"
  "CMakeFiles/bench_sec62_memory_overhead.dir/bench/bench_sec62_memory_overhead.cpp.o.d"
  "bench/bench_sec62_memory_overhead"
  "bench/bench_sec62_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
