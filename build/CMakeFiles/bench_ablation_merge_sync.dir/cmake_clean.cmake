file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_merge_sync.dir/bench/bench_ablation_merge_sync.cpp.o"
  "CMakeFiles/bench_ablation_merge_sync.dir/bench/bench_ablation_merge_sync.cpp.o.d"
  "bench/bench_ablation_merge_sync"
  "bench/bench_ablation_merge_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_merge_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
