file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_hot_cold.dir/bench/bench_fig11_hot_cold.cpp.o"
  "CMakeFiles/bench_fig11_hot_cold.dir/bench/bench_fig11_hot_cold.cpp.o.d"
  "bench/bench_fig11_hot_cold"
  "bench/bench_fig11_hot_cold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hot_cold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
