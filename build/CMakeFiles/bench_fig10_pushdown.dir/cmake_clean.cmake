file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_pushdown.dir/bench/bench_fig10_pushdown.cpp.o"
  "CMakeFiles/bench_fig10_pushdown.dir/bench/bench_fig10_pushdown.cpp.o.d"
  "bench/bench_fig10_pushdown"
  "bench/bench_fig10_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
