file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subjoins.dir/bench/bench_ablation_subjoins.cpp.o"
  "CMakeFiles/bench_ablation_subjoins.dir/bench/bench_ablation_subjoins.cpp.o.d"
  "bench/bench_ablation_subjoins"
  "bench/bench_ablation_subjoins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subjoins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
