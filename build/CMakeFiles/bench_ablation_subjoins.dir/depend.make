# Empty dependencies file for bench_ablation_subjoins.
# This may be replaced when dependencies are built.
