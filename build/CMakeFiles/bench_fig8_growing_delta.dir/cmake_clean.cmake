file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_growing_delta.dir/bench/bench_fig8_growing_delta.cpp.o"
  "CMakeFiles/bench_fig8_growing_delta.dir/bench/bench_fig8_growing_delta.cpp.o.d"
  "bench/bench_fig8_growing_delta"
  "bench/bench_fig8_growing_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_growing_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
