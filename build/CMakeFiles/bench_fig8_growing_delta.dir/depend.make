# Empty dependencies file for bench_fig8_growing_delta.
# This may be replaced when dependencies are built.
