# Empty dependencies file for bench_fig7_join_pruning.
# This may be replaced when dependencies are built.
