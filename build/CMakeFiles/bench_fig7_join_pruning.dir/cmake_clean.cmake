file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_join_pruning.dir/bench/bench_fig7_join_pruning.cpp.o"
  "CMakeFiles/bench_fig7_join_pruning.dir/bench/bench_fig7_join_pruning.cpp.o.d"
  "bench/bench_fig7_join_pruning"
  "bench/bench_fig7_join_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_join_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
