# Empty dependencies file for bench_ablation_main_comp.
# This may be replaced when dependencies are built.
