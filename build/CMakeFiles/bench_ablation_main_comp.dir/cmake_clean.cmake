file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_main_comp.dir/bench/bench_ablation_main_comp.cpp.o"
  "CMakeFiles/bench_ablation_main_comp.dir/bench/bench_ablation_main_comp.cpp.o.d"
  "bench/bench_ablation_main_comp"
  "bench/bench_ablation_main_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_main_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
