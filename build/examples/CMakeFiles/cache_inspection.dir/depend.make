# Empty dependencies file for cache_inspection.
# This may be replaced when dependencies are built.
