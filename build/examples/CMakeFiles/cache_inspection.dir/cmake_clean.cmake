file(REMOVE_RECURSE
  "CMakeFiles/cache_inspection.dir/cache_inspection.cpp.o"
  "CMakeFiles/cache_inspection.dir/cache_inspection.cpp.o.d"
  "cache_inspection"
  "cache_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
