file(REMOVE_RECURSE
  "CMakeFiles/hot_cold_aging.dir/hot_cold_aging.cpp.o"
  "CMakeFiles/hot_cold_aging.dir/hot_cold_aging.cpp.o.d"
  "hot_cold_aging"
  "hot_cold_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_cold_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
