# Empty dependencies file for hot_cold_aging.
# This may be replaced when dependencies are built.
