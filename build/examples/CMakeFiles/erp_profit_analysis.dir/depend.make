# Empty dependencies file for erp_profit_analysis.
# This may be replaced when dependencies are built.
