file(REMOVE_RECURSE
  "CMakeFiles/erp_profit_analysis.dir/erp_profit_analysis.cpp.o"
  "CMakeFiles/erp_profit_analysis.dir/erp_profit_analysis.cpp.o.d"
  "erp_profit_analysis"
  "erp_profit_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erp_profit_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
