# Empty dependencies file for materials_management.
# This may be replaced when dependencies are built.
