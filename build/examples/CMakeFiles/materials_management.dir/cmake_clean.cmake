file(REMOVE_RECURSE
  "CMakeFiles/materials_management.dir/materials_management.cpp.o"
  "CMakeFiles/materials_management.dir/materials_management.cpp.o.d"
  "materials_management"
  "materials_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materials_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
