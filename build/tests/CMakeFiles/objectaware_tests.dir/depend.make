# Empty dependencies file for objectaware_tests.
# This may be replaced when dependencies are built.
