file(REMOVE_RECURSE
  "CMakeFiles/objectaware_tests.dir/join_pruning_test.cc.o"
  "CMakeFiles/objectaware_tests.dir/join_pruning_test.cc.o.d"
  "CMakeFiles/objectaware_tests.dir/matching_dependency_test.cc.o"
  "CMakeFiles/objectaware_tests.dir/matching_dependency_test.cc.o.d"
  "CMakeFiles/objectaware_tests.dir/predicate_pushdown_test.cc.o"
  "CMakeFiles/objectaware_tests.dir/predicate_pushdown_test.cc.o.d"
  "objectaware_tests"
  "objectaware_tests.pdb"
  "objectaware_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objectaware_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
