
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/column_test.cc" "tests/CMakeFiles/storage_tests.dir/column_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/column_test.cc.o.d"
  "/root/repo/tests/database_test.cc" "tests/CMakeFiles/storage_tests.dir/database_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/database_test.cc.o.d"
  "/root/repo/tests/delta_merge_test.cc" "tests/CMakeFiles/storage_tests.dir/delta_merge_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/delta_merge_test.cc.o.d"
  "/root/repo/tests/dictionary_test.cc" "tests/CMakeFiles/storage_tests.dir/dictionary_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/dictionary_test.cc.o.d"
  "/root/repo/tests/hot_cold_test.cc" "tests/CMakeFiles/storage_tests.dir/hot_cold_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/hot_cold_test.cc.o.d"
  "/root/repo/tests/partition_test.cc" "tests/CMakeFiles/storage_tests.dir/partition_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/partition_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/storage_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/snapshot_test.cc" "tests/CMakeFiles/storage_tests.dir/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/snapshot_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/storage_tests.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aggcache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
