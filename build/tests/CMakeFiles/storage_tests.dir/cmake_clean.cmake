file(REMOVE_RECURSE
  "CMakeFiles/storage_tests.dir/column_test.cc.o"
  "CMakeFiles/storage_tests.dir/column_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/database_test.cc.o"
  "CMakeFiles/storage_tests.dir/database_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/delta_merge_test.cc.o"
  "CMakeFiles/storage_tests.dir/delta_merge_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/dictionary_test.cc.o"
  "CMakeFiles/storage_tests.dir/dictionary_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/hot_cold_test.cc.o"
  "CMakeFiles/storage_tests.dir/hot_cold_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/partition_test.cc.o"
  "CMakeFiles/storage_tests.dir/partition_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/schema_test.cc.o"
  "CMakeFiles/storage_tests.dir/schema_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/snapshot_test.cc.o"
  "CMakeFiles/storage_tests.dir/snapshot_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/table_test.cc.o"
  "CMakeFiles/storage_tests.dir/table_test.cc.o.d"
  "storage_tests"
  "storage_tests.pdb"
  "storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
