file(REMOVE_RECURSE
  "CMakeFiles/query_tests.dir/aggregate_query_test.cc.o"
  "CMakeFiles/query_tests.dir/aggregate_query_test.cc.o.d"
  "CMakeFiles/query_tests.dir/aggregate_result_test.cc.o"
  "CMakeFiles/query_tests.dir/aggregate_result_test.cc.o.d"
  "CMakeFiles/query_tests.dir/executor_test.cc.o"
  "CMakeFiles/query_tests.dir/executor_test.cc.o.d"
  "CMakeFiles/query_tests.dir/having_test.cc.o"
  "CMakeFiles/query_tests.dir/having_test.cc.o.d"
  "CMakeFiles/query_tests.dir/predicate_test.cc.o"
  "CMakeFiles/query_tests.dir/predicate_test.cc.o.d"
  "CMakeFiles/query_tests.dir/subjoin_test.cc.o"
  "CMakeFiles/query_tests.dir/subjoin_test.cc.o.d"
  "query_tests"
  "query_tests.pdb"
  "query_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
