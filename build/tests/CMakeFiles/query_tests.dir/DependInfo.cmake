
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregate_query_test.cc" "tests/CMakeFiles/query_tests.dir/aggregate_query_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/aggregate_query_test.cc.o.d"
  "/root/repo/tests/aggregate_result_test.cc" "tests/CMakeFiles/query_tests.dir/aggregate_result_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/aggregate_result_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/query_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/having_test.cc" "tests/CMakeFiles/query_tests.dir/having_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/having_test.cc.o.d"
  "/root/repo/tests/predicate_test.cc" "tests/CMakeFiles/query_tests.dir/predicate_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/predicate_test.cc.o.d"
  "/root/repo/tests/subjoin_test.cc" "tests/CMakeFiles/query_tests.dir/subjoin_test.cc.o" "gcc" "tests/CMakeFiles/query_tests.dir/subjoin_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aggcache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
