file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/bit_packed_vector_test.cc.o"
  "CMakeFiles/common_tests.dir/bit_packed_vector_test.cc.o.d"
  "CMakeFiles/common_tests.dir/bit_vector_test.cc.o"
  "CMakeFiles/common_tests.dir/bit_vector_test.cc.o.d"
  "CMakeFiles/common_tests.dir/status_test.cc.o"
  "CMakeFiles/common_tests.dir/status_test.cc.o.d"
  "CMakeFiles/common_tests.dir/string_util_test.cc.o"
  "CMakeFiles/common_tests.dir/string_util_test.cc.o.d"
  "CMakeFiles/common_tests.dir/txn_test.cc.o"
  "CMakeFiles/common_tests.dir/txn_test.cc.o.d"
  "CMakeFiles/common_tests.dir/value_test.cc.o"
  "CMakeFiles/common_tests.dir/value_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
