file(REMOVE_RECURSE
  "CMakeFiles/sql_tests.dir/parser_fuzz_test.cc.o"
  "CMakeFiles/sql_tests.dir/parser_fuzz_test.cc.o.d"
  "CMakeFiles/sql_tests.dir/parser_test.cc.o"
  "CMakeFiles/sql_tests.dir/parser_test.cc.o.d"
  "CMakeFiles/sql_tests.dir/tokenizer_test.cc.o"
  "CMakeFiles/sql_tests.dir/tokenizer_test.cc.o.d"
  "sql_tests"
  "sql_tests.pdb"
  "sql_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
