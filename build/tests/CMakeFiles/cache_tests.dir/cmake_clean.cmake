file(REMOVE_RECURSE
  "CMakeFiles/cache_tests.dir/cache_entry_test.cc.o"
  "CMakeFiles/cache_tests.dir/cache_entry_test.cc.o.d"
  "CMakeFiles/cache_tests.dir/cache_key_test.cc.o"
  "CMakeFiles/cache_tests.dir/cache_key_test.cc.o.d"
  "CMakeFiles/cache_tests.dir/cache_manager_test.cc.o"
  "CMakeFiles/cache_tests.dir/cache_manager_test.cc.o.d"
  "CMakeFiles/cache_tests.dir/compensation_test.cc.o"
  "CMakeFiles/cache_tests.dir/compensation_test.cc.o.d"
  "CMakeFiles/cache_tests.dir/maintenance_test.cc.o"
  "CMakeFiles/cache_tests.dir/maintenance_test.cc.o.d"
  "cache_tests"
  "cache_tests.pdb"
  "cache_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
