
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/aggregate_cache_manager.cc" "src/CMakeFiles/aggcache.dir/cache/aggregate_cache_manager.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/cache/aggregate_cache_manager.cc.o.d"
  "/root/repo/src/cache/cache_entry.cc" "src/CMakeFiles/aggcache.dir/cache/cache_entry.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/cache/cache_entry.cc.o.d"
  "/root/repo/src/cache/cache_key.cc" "src/CMakeFiles/aggcache.dir/cache/cache_key.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/cache/cache_key.cc.o.d"
  "/root/repo/src/cache/compensation.cc" "src/CMakeFiles/aggcache.dir/cache/compensation.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/cache/compensation.cc.o.d"
  "/root/repo/src/cache/maintenance.cc" "src/CMakeFiles/aggcache.dir/cache/maintenance.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/cache/maintenance.cc.o.d"
  "/root/repo/src/common/bit_packed_vector.cc" "src/CMakeFiles/aggcache.dir/common/bit_packed_vector.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/common/bit_packed_vector.cc.o.d"
  "/root/repo/src/common/bit_vector.cc" "src/CMakeFiles/aggcache.dir/common/bit_vector.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/common/bit_vector.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/aggcache.dir/common/status.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/aggcache.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/aggcache.dir/common/value.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/common/value.cc.o.d"
  "/root/repo/src/objectaware/join_pruning.cc" "src/CMakeFiles/aggcache.dir/objectaware/join_pruning.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/objectaware/join_pruning.cc.o.d"
  "/root/repo/src/objectaware/matching_dependency.cc" "src/CMakeFiles/aggcache.dir/objectaware/matching_dependency.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/objectaware/matching_dependency.cc.o.d"
  "/root/repo/src/objectaware/predicate_pushdown.cc" "src/CMakeFiles/aggcache.dir/objectaware/predicate_pushdown.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/objectaware/predicate_pushdown.cc.o.d"
  "/root/repo/src/query/aggregate_query.cc" "src/CMakeFiles/aggcache.dir/query/aggregate_query.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/query/aggregate_query.cc.o.d"
  "/root/repo/src/query/aggregate_result.cc" "src/CMakeFiles/aggcache.dir/query/aggregate_result.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/query/aggregate_result.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/aggcache.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/query/executor.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/aggcache.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/subjoin.cc" "src/CMakeFiles/aggcache.dir/query/subjoin.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/query/subjoin.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/aggcache.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/tokenizer.cc" "src/CMakeFiles/aggcache.dir/sql/tokenizer.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/sql/tokenizer.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/aggcache.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/aggcache.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/delta_merge.cc" "src/CMakeFiles/aggcache.dir/storage/delta_merge.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/storage/delta_merge.cc.o.d"
  "/root/repo/src/storage/dictionary.cc" "src/CMakeFiles/aggcache.dir/storage/dictionary.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/storage/dictionary.cc.o.d"
  "/root/repo/src/storage/partition.cc" "src/CMakeFiles/aggcache.dir/storage/partition.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/storage/partition.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/aggcache.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "src/CMakeFiles/aggcache.dir/storage/snapshot.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/storage/snapshot.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/aggcache.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/storage/table.cc.o.d"
  "/root/repo/src/txn/consistent_view_manager.cc" "src/CMakeFiles/aggcache.dir/txn/consistent_view_manager.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/txn/consistent_view_manager.cc.o.d"
  "/root/repo/src/workload/chbench.cc" "src/CMakeFiles/aggcache.dir/workload/chbench.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/workload/chbench.cc.o.d"
  "/root/repo/src/workload/csv_loader.cc" "src/CMakeFiles/aggcache.dir/workload/csv_loader.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/workload/csv_loader.cc.o.d"
  "/root/repo/src/workload/erp_generator.cc" "src/CMakeFiles/aggcache.dir/workload/erp_generator.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/workload/erp_generator.cc.o.d"
  "/root/repo/src/workload/mixed_workload.cc" "src/CMakeFiles/aggcache.dir/workload/mixed_workload.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/workload/mixed_workload.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/aggcache.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/aggcache.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
