file(REMOVE_RECURSE
  "libaggcache.a"
)
