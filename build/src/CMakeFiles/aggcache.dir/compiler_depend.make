# Empty compiler generated dependencies file for aggcache.
# This may be replaced when dependencies are built.
