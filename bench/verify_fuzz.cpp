// Differential correctness harness driver (see src/verify/).
//
//   verify_fuzz --seeds=64                 sweep seeds 1..64, clean + faults
//   verify_fuzz --seeds=10-20 --faults=off clean runs for a seed range
//   verify_fuzz --seed=7 --steps=200       one long seed
//   verify_fuzz --crash                    durable runs with simulated kills
//                                          + recovery at every crash point
//   verify_fuzz --self-test                prove a divergence gets reported
//   verify_fuzz --replay=trace.txt         re-run a recorded failure trace
//
// Exit status: 0 when every run matched the oracle (or the self-test
// detected its planted divergence), 1 on the first divergence/failure
// (prints the seed and its replayable trace), 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "cache/aggregate_cache_manager.h"
#include "obs/engine_metrics.h"
#include "obs/metrics_history.h"
#include "obs/metrics_registry.h"
#include "obs/obs_endpoints.h"
#include "obs/obs_server.h"
#include "obs/slow_log.h"
#include "runtime/memory_tracker.h"
#include "storage/database.h"
#include "verify/fault_injector.h"
#include "verify/fuzzer.h"
#include "workload/trace.h"

namespace {

using aggcache::AggregateCacheManager;
using aggcache::Database;
using aggcache::FuzzOptions;
using aggcache::FuzzReport;
using aggcache::RunFuzzSeed;
using aggcache::TraceReplayer;

struct Flags {
  uint64_t seed_lo = 1;
  uint64_t seed_hi = 16;
  size_t steps = 60;
  size_t check_every = 6;
  std::string faults = "both";  // both | only | off
  bool crash = false;
  std::string crash_dir = "verify_fuzz_data";
  bool self_test = false;
  std::string replay_file;
  size_t max_entries = 64;
  bool incremental = true;
};

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  uint64_t v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds=N | --seeds=A-B | --seed=N] [--steps=N]\n"
      "          [--check-every=N] [--faults=both|only|off] [--self-test]\n"
      "          [--crash] [--crash-dir=DIR]\n"
      "          [--replay=FILE [--max-entries=N] [--incremental=0|1]]\n",
      argv0);
  return 2;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    uint64_t n = 0;
    if (const char* v = value_of("--seeds=")) {
      const char* dash = std::strchr(v, '-');
      if (dash != nullptr) {
        std::string lo(v, dash - v);
        if (!ParseUint(lo.c_str(), &flags->seed_lo) ||
            !ParseUint(dash + 1, &flags->seed_hi)) {
          return false;
        }
      } else {
        if (!ParseUint(v, &flags->seed_hi)) return false;
        flags->seed_lo = 1;
      }
    } else if (const char* v = value_of("--seed=")) {
      if (!ParseUint(v, &n)) return false;
      flags->seed_lo = flags->seed_hi = n;
    } else if (const char* v = value_of("--steps=")) {
      if (!ParseUint(v, &n)) return false;
      flags->steps = n;
    } else if (const char* v = value_of("--check-every=")) {
      if (!ParseUint(v, &n) || n == 0) return false;
      flags->check_every = n;
    } else if (const char* v = value_of("--faults=")) {
      flags->faults = v;
      if (flags->faults != "both" && flags->faults != "only" &&
          flags->faults != "off") {
        return false;
      }
    } else if (std::strcmp(arg, "--crash") == 0) {
      flags->crash = true;
    } else if (const char* v = value_of("--crash-dir=")) {
      flags->crash_dir = v;
    } else if (std::strcmp(arg, "--self-test") == 0) {
      flags->self_test = true;
    } else if (const char* v = value_of("--replay=")) {
      flags->replay_file = v;
    } else if (const char* v = value_of("--max-entries=")) {
      if (!ParseUint(v, &n)) return false;
      flags->max_entries = n;
    } else if (const char* v = value_of("--incremental=")) {
      if (!ParseUint(v, &n) || n > 1) return false;
      flags->incremental = n == 1;
    } else {
      return false;
    }
  }
  return flags->seed_lo <= flags->seed_hi;
}

int RunReplay(const Flags& flags) {
  std::ifstream file(flags.replay_file);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", flags.replay_file.c_str());
    return 2;
  }
  Database db;
  AggregateCacheManager::Config config;
  config.max_entries = flags.max_entries;
  config.incremental_join_main_compensation = flags.incremental;
  AggregateCacheManager cache(&db, config);
  TraceReplayer replayer(&db, &cache);
  auto report_or = replayer.Replay(file);
  aggcache::FaultInjector::Global().DisarmAll();
  if (!report_or.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const aggcache::TraceReport& r = report_or.value();
  std::printf(
      "replay ok: %zu statements (%zu inserts, %zu queries, %zu ddl), "
      "%zu updates, %zu deletes, %zu merges (%zu faulted), %zu splits\n",
      r.statements, r.inserts, r.queries, r.ddl, r.updates, r.deletes,
      r.merges, r.faulted_merges, r.splits);
  return 0;
}

int RunSelfTest(const Flags& flags) {
  FuzzOptions options;
  options.steps = flags.steps;
  options.check_every = flags.check_every;
  options.inject_divergence = true;
  FuzzReport report = RunFuzzSeed(flags.seed_lo, options);
  std::printf("%s\n", report.Summary().c_str());
  if (report.ok) {
    std::fprintf(stderr,
                 "self-test FAILED: planted divergence was not detected\n");
    return 1;
  }
  std::printf("--- replayable trace ---\n%s--- end trace ---\n",
              report.trace.c_str());
  std::printf("self-test ok: planted divergence detected and reported\n");
  return 0;
}

int ReportFailure(const FuzzReport& report, bool with_faults) {
  std::printf("%s\n", report.Summary().c_str());
  std::fprintf(stderr, "first failing seed: %llu (%s)\n",
               static_cast<unsigned long long>(report.seed),
               with_faults ? "with faults" : "clean");
  std::printf("--- replayable trace (feed to --replay) ---\n%s--- end "
              "trace ---\n",
              report.trace.c_str());
  return 1;
}

/// Cross-checks the process-wide registry at exit: every consulted cache
/// lookup must have resolved to exactly one of hit or miss, every per-query
/// memory reservation must have been released (no query is in flight now),
/// and the final exposition is printed so fuzz logs carry the engine's
/// counters.
int CheckMetricsInvariants() {
  const aggcache::EngineMetrics& em = aggcache::EngineMetrics::Get();
  uint64_t lookups = em.cache_lookups->Value();
  uint64_t hits = em.cache_hits->Value();
  uint64_t misses = em.cache_misses->Value();
  std::printf("--- final metrics (prometheus) ---\n%s",
              aggcache::MetricsRegistry::Global().RenderPrometheus().c_str());
  if (hits + misses != lookups) {
    std::fprintf(stderr,
                 "METRICS VIOLATION: hits(%llu) + misses(%llu) != "
                 "lookups(%llu)\n",
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(misses),
                 static_cast<unsigned long long>(lookups));
    return 1;
  }
  size_t query_bytes = aggcache::MemoryTracker::Queries().used();
  if (query_bytes != 0) {
    std::fprintf(stderr,
                 "TRACKER VIOLATION: %zu query-reserved bytes still "
                 "tracked at exit\n",
                 query_bytes);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  aggcache::MetricsDumper::MaybeStartFromEnv();
  // Long fuzz campaigns are exactly when live introspection pays off:
  // AGGCACHE_OBS_ADDR exposes /queries, /slowlog, /metrics/history, ...
  // for the whole run. The server only reads process-global state.
  aggcache::SlowQueryLog::Global().ConfigureFromEnv();
  aggcache::MetricsHistory::Global().Start(
      aggcache::MetricsHistory::OptionsFromEnv());
  aggcache::ObsServer obs_server;
  if (const char* obs_addr = std::getenv("AGGCACHE_OBS_ADDR")) {
    aggcache::RegisterCommonObsEndpoints(obs_server);
    aggcache::ObsServer::Options obs_options;
    obs_options.address = obs_addr;
    aggcache::Status obs_started = obs_server.Start(obs_options);
    if (!obs_started.ok()) {
      std::fprintf(stderr, "observability server: %s\n",
                   obs_started.ToString().c_str());
      return 2;
    }
    std::printf("observability endpoint on port %u\n", obs_server.port());
  }
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage(argv[0]);
  if (!flags.replay_file.empty()) return RunReplay(flags);
  if (flags.self_test) return RunSelfTest(flags);

  FuzzOptions options;
  options.steps = flags.steps;
  options.check_every = flags.check_every;
  options.with_crashes = flags.crash;
  options.data_dir = flags.crash_dir;

  size_t runs = 0;
  size_t combos = 0;
  uint64_t faults = 0;
  size_t crashes = 0;
  for (uint64_t seed = flags.seed_lo; seed <= flags.seed_hi; ++seed) {
    if (flags.faults != "only") {
      options.with_faults = false;
      FuzzReport report = RunFuzzSeed(seed, options);
      if (!report.ok) return ReportFailure(report, false);
      std::printf("%s\n", report.Summary().c_str());
      ++runs;
      combos += report.combos_checked;
      crashes += report.crashes_survived;
    }
    if (flags.faults != "off") {
      options.with_faults = true;
      FuzzReport report = RunFuzzSeed(seed, options);
      if (!report.ok) return ReportFailure(report, true);
      std::printf("[faults] %s\n", report.Summary().c_str());
      ++runs;
      combos += report.combos_checked;
      faults += report.faults_fired;
      crashes += report.crashes_survived;
    }
  }
  std::printf(
      "all %zu runs matched the oracle (%zu strategy combinations, %llu "
      "injected faults fired, %zu crashes survived)\n",
      runs, combos, static_cast<unsigned long long>(faults), crashes);
  return CheckMetricsInvariants();
}
