# Bench binaries, one per reproduced table/figure plus two ablations.
# Defined from the top-level CMakeLists via include() so that
# ${CMAKE_BINARY_DIR}/bench contains only runnable executables.

set(AGGCACHE_BENCH_TARGETS
  bench_fig6_maintenance
  bench_sec62_memory_overhead
  bench_sec63_insert_overhead
  bench_fig7_join_pruning
  bench_fig8_growing_delta
  bench_fig9_chbench
  bench_fig10_pushdown
  bench_fig11_hot_cold
  bench_ablation_subjoins
  bench_ablation_merge_sync
  bench_ablation_main_comp
  bench_ablation_locality
  bench_parallel_scaling
  bench_recovery
  bench_overload
)

foreach(target ${AGGCACHE_BENCH_TARGETS})
  add_executable(${target} bench/${target}.cpp)
  target_link_libraries(${target} PRIVATE aggcache)
  target_include_directories(${target} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${target} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

target_link_libraries(bench_sec63_insert_overhead PRIVATE benchmark::benchmark)

# Differential correctness harness (src/verify): not a benchmark, but a
# runnable tool shipped next to them. See bench/verify_fuzz.cpp for usage.
add_executable(verify_fuzz bench/verify_fuzz.cpp)
target_link_libraries(verify_fuzz PRIVATE aggcache)
target_include_directories(verify_fuzz PRIVATE ${CMAKE_SOURCE_DIR})
set_target_properties(verify_fuzz PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Concurrent stress harness: W writers + R readers + the merge daemon, with
# in-flight cross-strategy diffs and oracle checkpoints at quiesce barriers.
# Run under -DAGGCACHE_SANITIZE=thread for the TSAN proof.
add_executable(stress_concurrent bench/stress_concurrent.cpp)
target_link_libraries(stress_concurrent PRIVATE aggcache)
target_include_directories(stress_concurrent PRIVATE ${CMAKE_SOURCE_DIR})
set_target_properties(stress_concurrent PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
