// Section 6.2 — Memory consumption overhead of the temporal (tid) columns.
//
// Paper result: five extra tid attributes across Header/Item/
// ProductCategory cost ~13% extra memory in the delta partitions and ~10%
// in the main partitions (main compresses the tid columns better thanks to
// sorted dictionaries and bit-packed codes).

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

struct Footprint {
  size_t delta_bytes = 0;
  size_t main_bytes = 0;
};

Footprint Measure(bool with_tids, size_t headers_main, size_t delta_objects) {
  Database db;
  ErpConfig config;
  // Paper: 35M header / 330M item rows in main; 2.7K/270K in delta.
  // Scaled by 100x: 35K headers (~350K items) main, 27K delta items.
  config.num_headers_main = headers_main;
  config.num_categories = 50;
  config.with_tid_columns = with_tids;
  ErpDataset dataset = CheckOk(ErpDataset::Create(&db, config), "erp");

  Footprint footprint;
  for (Table* t : {dataset.header(), dataset.item(), dataset.category()}) {
    footprint.main_bytes += t->group(0).main.ColumnByteSize();
  }
  // Fill the deltas with ~2.7K headers' worth of business objects.
  Rng rng(99);
  for (size_t i = 0; i < delta_objects; ++i) {
    CheckOk(dataset.InsertBusinessObject(rng).status(), "insert");
  }
  for (Table* t : {dataset.header(), dataset.item(), dataset.category()}) {
    footprint.delta_bytes += t->group(0).delta.ColumnByteSize();
  }
  return footprint;
}

void Run(BenchContext& ctx) {
  PrintBanner("Section 6.2", "memory overhead of the tid columns",
              "+13% in delta partitions, +10% in main partitions (better "
              "compression in main)");

  const size_t headers_main = ctx.QuickOr<size_t>(5000, 35000);
  const size_t delta_objects = ctx.QuickOr<size_t>(400, 2700);
  ctx.report().SetConfig("headers_main", static_cast<int64_t>(headers_main));
  ctx.report().SetConfig("delta_objects",
                         static_cast<int64_t>(delta_objects));

  Footprint without = Measure(false, headers_main, delta_objects);
  Footprint with_tids = Measure(true, headers_main, delta_objects);

  double delta_overhead =
      100.0 * (static_cast<double>(with_tids.delta_bytes) /
                   static_cast<double>(without.delta_bytes) -
               1.0);
  double main_overhead =
      100.0 * (static_cast<double>(with_tids.main_bytes) /
                   static_cast<double>(without.main_bytes) -
               1.0);

  ResultTable table({"store", "without_tids", "with_tids", "overhead_%"});
  table.AddRow({"delta", HumanBytes(without.delta_bytes),
                HumanBytes(with_tids.delta_bytes),
                StrFormat("%.1f", delta_overhead)});
  table.AddRow({"main", HumanBytes(without.main_bytes),
                HumanBytes(with_tids.main_bytes),
                StrFormat("%.1f", main_overhead)});
  table.Print();

  ctx.report().AddScalar("delta_bytes", {{"tids", "without"}},
                         static_cast<double>(without.delta_bytes), "bytes");
  ctx.report().AddScalar("delta_bytes", {{"tids", "with"}},
                         static_cast<double>(with_tids.delta_bytes), "bytes");
  ctx.report().AddScalar("main_bytes", {{"tids", "without"}},
                         static_cast<double>(without.main_bytes), "bytes");
  ctx.report().AddScalar("main_bytes", {{"tids", "with"}},
                         static_cast<double>(with_tids.main_bytes), "bytes");
  ctx.report().AddScalar("delta_overhead", {}, delta_overhead, "percent");
  ctx.report().AddScalar("main_overhead", {}, main_overhead, "percent");

  std::printf("\nmain overhead %s delta overhead (paper: main < delta, "
              "10%% vs 13%%)\n",
              main_overhead < delta_overhead ? "<" : ">=");
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::BenchContext ctx(argc, argv, "sec62_memory_overhead");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
