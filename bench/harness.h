#ifndef AGGCACHE_BENCH_HARNESS_H_
#define AGGCACHE_BENCH_HARNESS_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "aggcache/aggcache.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/bench_report.h"

namespace aggcache {
namespace bench {

/// Parses a --threads=N flag (overriding the AGGCACHE_THREADS env var) and
/// sizes the global subjoin worker pool accordingly. Returns the applied
/// parallelism. Call first thing in main().
inline size_t ApplyThreadsFlag(int argc, char** argv) {
  constexpr const char* kPrefix = "--threads=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, std::strlen(kPrefix)) == 0) {
      const char* value = argv[i] + std::strlen(kPrefix);
      char* end = nullptr;
      long n = std::strtol(value, &end, 10);
      if (end != value && *end == '\0' && n >= 1) {
        ThreadPool::SetGlobalParallelism(n);
      } else {
        std::fprintf(stderr, "ignoring malformed %s\n", argv[i]);
      }
    }
  }
  return ThreadPool::Global().parallelism();
}

/// Runs `fn` once untimed (discarded warm-up — the first rep runs cold:
/// cache entries build, pool threads spin up, allocators touch fresh pages,
/// all of which skews low-rep medians) and then `reps` timed repetitions;
/// returns nearest-rank {p5, median, p95} wall-clock milliseconds.
inline LatencyStats MeasureMs(int reps, const std::function<void()>& fn) {
  if (reps < 1) {
    // An empty sample set would flow into SummarizeLatencies and silently
    // report all-zero latencies — which a perf gate would read as a huge
    // improvement. Fail loudly instead.
    std::fprintf(stderr, "FATAL MeasureMs: reps must be >= 1, got %d\n",
                 reps);
    std::abort();
  }
  fn();
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    times.push_back(watch.ElapsedMillis());
  }
  return SummarizeLatencies(std::move(times));
}

/// Aborts the benchmark on an unexpected error.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckOk(StatusOr<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Fixed-width text table, printed in the style of the paper's figures:
/// one row per x-axis point, one column per series.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < columns_.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]),
                    c < cells.size() ? cells[c].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(columns_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline void PrintBanner(const char* id, const char* title,
                        const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline std::string FormatMs(double ms) { return StrFormat("%.3f", ms); }
inline std::string FormatNorm(double v) { return StrFormat("%.3f", v); }

/// The four join execution strategies of Section 6.4, in display order.
struct StrategySpec {
  const char* label;
  ExecutionStrategy strategy;
  bool pushdown;
};

inline std::vector<StrategySpec> JoinStrategies() {
  return {
      {"uncached", ExecutionStrategy::kUncached, false},
      {"cached-no-pruning", ExecutionStrategy::kCachedNoPruning, false},
      {"cached-empty-delta", ExecutionStrategy::kCachedEmptyDeltaPruning,
       false},
      {"cached-full-pruning", ExecutionStrategy::kCachedFullPruning, false},
  };
}

}  // namespace bench
}  // namespace aggcache

#endif  // AGGCACHE_BENCH_HARNESS_H_
