// Figure 11 — Join strategies with and without hot/cold partitioning
// (1:3 hot:cold), across aggregate queries of different selectivities.
//
// Paper result: uncached queries get slightly faster with partitioning
// (reduced scan effort via static partition pruning); cached-without-
// pruning gets *worse* (more compensation subjoins); full pruning is
// superior in both layouts, around an order of magnitude over uncached.

#include <limits>

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kHeadersMain = 20000;
constexpr size_t kQuickHeadersMain = 2000;
constexpr int kReps = 3;
size_t g_headers_main = kHeadersMain;

struct World {
  std::unique_ptr<Database> db;
  std::unique_ptr<ErpDataset> dataset;
  std::unique_ptr<AggregateCacheManager> cache;
};

World Build(bool partitioned) {
  World world;
  world.db = std::make_unique<Database>();
  ErpConfig config;
  config.num_headers_main = g_headers_main;
  config.num_categories = 50;
  world.dataset = std::make_unique<ErpDataset>(
      CheckOk(ErpDataset::Create(world.db.get(), config), "erp"));
  if (partitioned) {
    // 1:3 hot:cold by HeaderID (older business objects are cold). Items
    // are split on the matching tid boundary so the aging definition is
    // consistent across the business object.
    int64_t cold_below = static_cast<int64_t>(g_headers_main * 3 / 4);
    Table* header = world.dataset->header();
    CheckOk(header->SplitHotCold("HeaderID", Value(cold_below)),
            "split header");
    // Items age with their header: split on the same HeaderID boundary so
    // the aging definition is consistent across the business object.
    CheckOk(world.dataset->item()->SplitHotCold("HeaderID",
                                                Value(cold_below)),
            "split item");
    world.db->RegisterAgingGroup({"Header", "Item"});
  }
  // The cache manager must observe merges; create it after the split so
  // entries are built against the final layout.
  world.cache = std::make_unique<AggregateCacheManager>(world.db.get());
  // A modest delta so compensation has work to do.
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    CheckOk(world.dataset->InsertBusinessObject(rng).status(), "insert");
  }
  return world;
}

void Run(BenchContext& ctx) {
  g_headers_main = ctx.QuickOr(kQuickHeadersMain, kHeadersMain);
  ctx.report().SetConfig("headers_main",
                         static_cast<int64_t>(g_headers_main));
  ctx.report().SetConfig("reps", static_cast<int64_t>(kReps));
  PrintBanner("Figure 11",
              "join strategies, unpartitioned vs hot/cold partitioned (1:3)",
              "uncached slightly faster partitioned; cached-no-pruning "
              "slower partitioned; full pruning ~10x in both layouts");

  // Queries of different selectivities: restrict to the most recent
  // business objects (hot partition) via a HeaderID lower bound.
  std::vector<std::pair<const char*, int64_t>> selectivities = {
      {"2.5%", static_cast<int64_t>(g_headers_main * 39 / 40)},
      {"10%", static_cast<int64_t>(g_headers_main * 9 / 10)},
      {"25%", static_cast<int64_t>(g_headers_main * 3 / 4)},  // Hot only.
      {"50%", static_cast<int64_t>(g_headers_main / 2)},      // Crosses cold.
      {"100%", 0}};

  World unpartitioned = Build(false);
  World partitioned = Build(true);

  std::vector<StrategySpec> strategies = {
      {"uncached", ExecutionStrategy::kUncached, false},
      {"cached-no-pruning", ExecutionStrategy::kCachedNoPruning, false},
      {"cached-full-pruning", ExecutionStrategy::kCachedFullPruning, false},
  };

  std::vector<std::string> columns = {"selectivity", "agg_rows"};
  for (const char* layout : {"flat", "hotcold"}) {
    for (const StrategySpec& s : strategies) {
      columns.push_back(std::string(layout) + ":" + s.label + "_ms");
    }
  }
  ResultTable table(columns);

  for (auto [label, min_header] : selectivities) {
    // The range predicate is applied on both sides of the join, as aged
    // enterprise queries do (and as an optimizer would derive through the
    // equi-join): this is what lets static partition pruning skip cold
    // partitions entirely.
    AggregateQuery query =
        QueryBuilder()
            .From("Header")
            .Join("Item", "HeaderID", "HeaderID")
            .Filter("Header", "HeaderID", CompareOp::kGe,
                    Value(min_header))
            .Filter("Item", "HeaderID", CompareOp::kGe, Value(min_header))
            .GroupBy("Header", "FiscalYear")
            .Sum("Item", "Price", "revenue")
            .CountStar("n")
            .Build();

    // Report the number of aggregated (joined) rows once.
    Executor counter(unpartitioned.db.get());
    auto counted = CheckOk(
        counter.ExecuteUncached(
            query, unpartitioned.db->txn_manager().GlobalSnapshot()),
        "count");
    int64_t agg_rows = 0;
    for (const auto& [key, entry] : counted.groups()) {
      agg_rows += entry.count_star;
    }

    std::vector<std::string> row = {label, StrFormat("%lld",
                                        static_cast<long long>(agg_rows))};
    const char* layout_names[] = {"flat", "hotcold"};
    size_t layout_index = 0;
    for (World* world : {&unpartitioned, &partitioned}) {
      CheckOk(world->cache->Prewarm(query), "prewarm");
      for (const StrategySpec& s : strategies) {
        ExecutionOptions options;
        options.strategy = s.strategy;
        LatencyStats stats = MeasureMs(kReps, [&] {
          Transaction txn = world->db->Begin();
          CheckOk(world->cache->Execute(query, txn, options).status(),
                  "execute");
        });
        ctx.report().AddLatency("query_ms",
                                {{"strategy", s.label},
                                 {"layout", layout_names[layout_index]},
                                 {"selectivity", label}},
                                stats);
        row.push_back(FormatMs(stats.median_ms));
      }
      ++layout_index;
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::ApplyThreadsFlag(argc, argv);
  aggcache::BenchContext ctx(argc, argv, "fig11_hot_cold");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
