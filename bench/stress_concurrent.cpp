// Concurrent-serving stress harness (DESIGN.md §6): W writer threads and R
// reader threads run against one ERP dataset while the background merge
// daemon merges deltas under them. Correctness is asserted two ways:
//
//  1. In flight, every reader executes each query twice inside the same
//     transaction — once with its cached strategy, once uncached — and
//     diffs the two. Both executions pin the same snapshot tid, so they
//     must agree no matter how writers and merges interleave.
//  2. At quiesce barriers (every --checkpoint-secs), all workers park, the
//     daemon is paused, any in-flight merge drains, and every query is
//     checked against the independent oracle engine (src/verify/oracle.h)
//     under every strategy.
//
// The harness must hold under schedule perturbation and fault injection:
//
//   AGGCACHE_FAULT="storage.merge:0.3" bench/stress_concurrent
//   bench/stress_concurrent --faults="storage.merge.publish:delay:2:5"
//
// and must run clean under ThreadSanitizer (-DAGGCACHE_SANITIZE=thread).
// Exit code is non-zero on any divergence or unexpected error.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_history.h"
#include "obs/metrics_registry.h"
#include "obs/obs_endpoints.h"
#include "obs/obs_server.h"
#include "obs/slow_log.h"
#include "runtime/admission_controller.h"
#include "runtime/memory_tracker.h"
#include "runtime/query_context.h"
#include "storage/merge_daemon.h"
#include "storage/table_lock.h"
#include "verify/fault_injector.h"
#include "verify/oracle.h"

namespace aggcache {
namespace {

using bench::CheckOk;

struct Flags {
  int writers = 2;
  int readers = 8;
  double seconds = 10.0;
  double checkpoint_secs = 2.5;
  uint64_t seed = 42;
  std::string faults;
  /// Governance knobs: per-query deadline on the readers' cached path, a
  /// process memory limit (K/M/G suffixes), and an admission concurrency
  /// cap. Governance aborts under these are expected sheds, not errors.
  double deadline_ms = 0;
  std::string mem_limit;
  int max_concurrent = 0;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  auto value_of = [](const char* arg, const char* name) -> const char* {
    size_t len = std::strlen(name);
    return std::strncmp(arg, name, len) == 0 ? arg + len : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of(argv[i], "--writers=")) {
      flags.writers = std::atoi(v);
    } else if (const char* v = value_of(argv[i], "--readers=")) {
      flags.readers = std::atoi(v);
    } else if (const char* v = value_of(argv[i], "--seconds=")) {
      flags.seconds = std::atof(v);
    } else if (const char* v = value_of(argv[i], "--checkpoint-secs=")) {
      flags.checkpoint_secs = std::atof(v);
    } else if (const char* v = value_of(argv[i], "--seed=")) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(argv[i], "--faults=")) {
      flags.faults = v;
    } else if (const char* v = value_of(argv[i], "--deadline-ms=")) {
      flags.deadline_ms = std::atof(v);
    } else if (const char* v = value_of(argv[i], "--mem-limit=")) {
      flags.mem_limit = v;
    } else if (const char* v = value_of(argv[i], "--max-concurrent=")) {
      flags.max_concurrent = std::atoi(v);
    } else if (value_of(argv[i], "--threads=")) {
      // Handled by ApplyThreadsFlag.
    } else if (std::strcmp(argv[i], "--quick") == 0 ||
               std::strcmp(argv[i], "--json") == 0 ||
               value_of(argv[i], "--json=")) {
      // Handled by BenchContext.
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

/// One query the harness serves, with the tolerance its double sums need
/// (summation order varies across strategies and thread counts).
struct WorkloadQuery {
  std::string label;
  AggregateQuery query;
  std::vector<AggregateFunction> functions;
};

/// Quiesce barrier: workers park at the top of their loop whenever
/// `quiesce` is set; the coordinator waits until every worker is parked,
/// runs the checkpoint alone, and releases them.
class QuiesceBarrier {
 public:
  explicit QuiesceBarrier(int workers) : workers_(workers) {}

  /// Worker side: parks while a quiesce is in progress.
  void WorkerCheckpoint() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!quiesce_) return;
    ++parked_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return !quiesce_; });
    --parked_;
  }

  /// Coordinator side: blocks until all workers are parked.
  void BeginQuiesce() {
    std::unique_lock<std::mutex> lock(mu_);
    quiesce_ = true;
    cv_.wait(lock, [this] { return parked_ == workers_; });
  }

  void EndQuiesce() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      quiesce_ = false;
    }
    cv_.notify_all();
  }

  /// Workers that exit reduce the population the coordinator waits for.
  void WorkerExit() {
    std::lock_guard<std::mutex> lock(mu_);
    --workers_;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int workers_;
  int parked_ = 0;
  bool quiesce_ = false;
};

struct SharedState {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_txns{0};
  std::atomic<uint64_t> reader_queries{0};
  std::atomic<uint64_t> cache_fallbacks{0};   ///< injected-fault retreats
  std::atomic<uint64_t> governance_sheds{0};  ///< typed governance aborts
  std::atomic<uint64_t> divergences{0};
  std::atomic<uint64_t> hard_errors{0};
  /// Per-query deadline applied to the readers' cached executions
  /// (--deadline-ms; 0 = none).
  double deadline_ms = 0;
  /// True when any governance knob is active; typed governance aborts then
  /// count as sheds. With no knob set they would indicate a bug and are
  /// reported as hard errors.
  bool governance_active = false;
  std::mutex report_mu;
  /// Per-query cached-path latencies, appended by each reader at exit.
  std::mutex latency_mu;
  std::vector<double> reader_latencies_ms;
};

void ReportDivergence(SharedState& state, const std::string& where,
                      const std::string& detail) {
  state.divergences.fetch_add(1);
  std::lock_guard<std::mutex> lock(state.report_mu);
  std::fprintf(stderr, "DIVERGENCE [%s]: %s\n", where.c_str(),
               detail.c_str());
}

void ReportError(SharedState& state, const std::string& where,
                 const Status& status) {
  if (FaultInjector::IsInjectedFault(status)) {
    state.cache_fallbacks.fetch_add(1);
    return;
  }
  if (state.governance_active && status.IsGovernanceAbort()) {
    state.governance_sheds.fetch_add(1);
    return;
  }
  state.hard_errors.fetch_add(1);
  std::lock_guard<std::mutex> lock(state.report_mu);
  std::fprintf(stderr, "ERROR [%s]: %s\n", where.c_str(),
               status.ToString().c_str());
}

void WriterLoop(int id, uint64_t seed, ErpDataset& dataset,
                SharedState& state, QuiesceBarrier& barrier) {
  Rng rng(seed + static_cast<uint64_t>(id) * 7919);
  while (!state.stop.load(std::memory_order_relaxed)) {
    barrier.WorkerCheckpoint();
    // Mostly whole business objects (temporal locality), sometimes late
    // items that break it and exercise the non-prunable paths.
    if (rng.UniformInt(0, 9) < 8) {
      auto inserted = dataset.InsertBusinessObject(rng);
      if (!inserted.ok()) {
        ReportError(state, "writer/insert-object", inserted.status());
        continue;
      }
    } else {
      Status status =
          dataset.InsertLateItems(rng, static_cast<size_t>(
                                           rng.UniformInt(1, 3)));
      if (!status.ok()) {
        ReportError(state, "writer/late-items", status);
        continue;
      }
    }
    state.writer_txns.fetch_add(1, std::memory_order_relaxed);
  }
  barrier.WorkerExit();
}

void ReaderLoop(int id, Database& db, AggregateCacheManager& cache,
                const std::vector<WorkloadQuery>& queries,
                SharedState& state, QuiesceBarrier& barrier) {
  const std::vector<bench::StrategySpec> strategies = {
      {"cached-full-pruning", ExecutionStrategy::kCachedFullPruning, false},
      {"cached-full-pushdown", ExecutionStrategy::kCachedFullPruning, true},
      {"cached-empty-delta", ExecutionStrategy::kCachedEmptyDeltaPruning,
       false},
      {"cached-no-pruning", ExecutionStrategy::kCachedNoPruning, false},
  };
  uint64_t iteration = static_cast<uint64_t>(id);
  std::vector<double> latencies_ms;
  while (!state.stop.load(std::memory_order_relaxed)) {
    barrier.WorkerCheckpoint();
    const WorkloadQuery& wq = queries[iteration % queries.size()];
    const bench::StrategySpec& spec =
        strategies[(iteration / queries.size()) % strategies.size()];
    ++iteration;

    Transaction txn = db.Begin();
    ExecutionOptions options;
    options.strategy = spec.strategy;
    options.use_predicate_pushdown = spec.pushdown;
    // The deadline governs only the cached execution; the uncached
    // comparison below must not inherit an already-expired context.
    auto run_cached = [&] {
      if (state.deadline_ms <= 0) return cache.Execute(wq.query, txn, options);
      QueryContext::Options governed;
      governed.deadline_ms = state.deadline_ms;
      QueryContext context(governed);
      ScopedQueryContext scope(&context);
      return cache.Execute(wq.query, txn, options);
    };
    Stopwatch cached_watch;
    auto cached = run_cached();
    if (!cached.ok()) {
      ReportError(state, std::string("reader/") + spec.label,
                  cached.status());
      continue;
    }
    latencies_ms.push_back(cached_watch.ElapsedMillis());
    // Same transaction, therefore the same snapshot tid: the uncached
    // union must agree exactly, regardless of concurrent writes/merges.
    ExecutionOptions uncached_options;
    uncached_options.strategy = ExecutionStrategy::kUncached;
    auto uncached = cache.Execute(wq.query, txn, uncached_options);
    if (!uncached.ok()) {
      ReportError(state, "reader/uncached", uncached.status());
      continue;
    }
    std::optional<std::string> diff = DiffResults(
        uncached.value(), cached.value(), wq.functions, /*tolerance=*/1e-6);
    if (diff.has_value()) {
      // Triage: re-execute both sides in the same transaction. A persistent
      // diff means corrupted cached state; a vanished one a read race.
      std::string detail = *diff;
      auto cached2 = cache.Execute(wq.query, txn, options);
      auto uncached2 = cache.Execute(wq.query, txn, uncached_options);
      if (cached2.ok() && uncached2.ok()) {
        std::optional<std::string> rediff =
            DiffResults(uncached2.value(), cached2.value(), wq.functions,
                        /*tolerance=*/1e-6);
        detail += rediff.has_value() ? "\n  retry in same txn: still diverges"
                                     : "\n  retry in same txn: converged";
      }
      ReportDivergence(state, wq.label + "/" + spec.label, detail);
    }
    state.reader_queries.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(state.latency_mu);
    state.reader_latencies_ms.insert(state.reader_latencies_ms.end(),
                                     latencies_ms.begin(),
                                     latencies_ms.end());
  }
  barrier.WorkerExit();
}

/// Runs with all workers parked and the daemon paused: drains any in-flight
/// merge, then diffs every (query, strategy) against the oracle at one
/// snapshot.
void RunCheckpoint(Database& db, AggregateCacheManager& cache,
                   const std::vector<WorkloadQuery>& queries,
                   SharedState& state, int index) {
  {
    // Shared locks on every table act as a merge drain: once granted, no
    // merge is mid-publish anywhere.
    std::vector<const Table*> all_tables;
    for (const std::string& name : db.TableNames()) {
      all_tables.push_back(CheckOk(db.GetTable(name), "checkpoint table"));
    }
    ReadView drain = ReadView::Acquire(db, all_tables);
  }
  Transaction txn = db.Begin();
  for (const WorkloadQuery& wq : queries) {
    auto oracle = OracleExecute(db, wq.query, txn.snapshot());
    if (!oracle.ok()) {
      ReportError(state, "checkpoint/oracle", oracle.status());
      continue;
    }
    for (const bench::StrategySpec& spec : bench::JoinStrategies()) {
      ExecutionOptions options;
      options.strategy = spec.strategy;
      options.use_predicate_pushdown = spec.pushdown;
      auto result = cache.Execute(wq.query, txn, options);
      if (!result.ok()) {
        ReportError(state, std::string("checkpoint/") + spec.label,
                    result.status());
        continue;
      }
      std::optional<std::string> diff = DiffResults(
          oracle.value(), result.value(), wq.functions, /*tolerance=*/1e-6);
      if (diff.has_value()) {
        ReportDivergence(state,
                         StrFormat("checkpoint-%d/%s/%s", index,
                                   wq.label.c_str(), spec.label),
                         *diff);
      }
    }
  }
}

int Run(int argc, char** argv) {
  MetricsDumper::MaybeStartFromEnv();
  FlightRecorder::InstallSignalHandler();
  // AGGCACHE_OBS_ADDR=host:port serves the live-introspection endpoints
  // (/queries, /queries/cancel, /slowlog, /metrics/history, ...) while the
  // stress run is in flight — the harness is the most interesting process
  // to point curl at. Everything the endpoints read is process-global.
  SlowQueryLog::Global().ConfigureFromEnv();
  MetricsHistory::Global().Start(MetricsHistory::OptionsFromEnv());
  ObsServer obs_server;
  if (const char* obs_addr = std::getenv("AGGCACHE_OBS_ADDR")) {
    RegisterCommonObsEndpoints(obs_server);
    ObsServer::Options obs_options;
    obs_options.address = obs_addr;
    Status obs_started = obs_server.Start(obs_options);
    if (!obs_started.ok()) {
      std::fprintf(stderr, "observability server: %s\n",
                   obs_started.ToString().c_str());
      return 2;
    }
    std::printf("observability endpoint on port %u\n", obs_server.port());
  }
  size_t parallelism = bench::ApplyThreadsFlag(argc, argv);
  BenchContext ctx(argc, argv, "stress_concurrent");
  Flags flags = ParseFlags(argc, argv);
  if (ctx.quick()) {
    flags.seconds = std::min(flags.seconds, 2.0);
    flags.checkpoint_secs = std::min(flags.checkpoint_secs, 1.0);
  }
  ctx.report().SetConfig("writers", static_cast<int64_t>(flags.writers));
  ctx.report().SetConfig("readers", static_cast<int64_t>(flags.readers));
  ctx.report().SetConfig("seconds", flags.seconds);
  ctx.report().SetConfig("threads", static_cast<int64_t>(parallelism));
  ctx.report().SetConfig("faults", flags.faults.empty() ? "none"
                                                        : flags.faults);
  ctx.report().SetConfig("flight_enabled",
                         FlightRecorder::Global().enabled());
  ctx.report().SetConfig("deadline_ms", flags.deadline_ms);
  ctx.report().SetConfig("mem_limit",
                         flags.mem_limit.empty() ? "none" : flags.mem_limit);
  ctx.report().SetConfig("max_concurrent",
                         static_cast<int64_t>(flags.max_concurrent));

  Database db;
  ErpConfig config;
  // Sized for the oracle's nested-loop joins: checkpoints must stay cheap
  // relative to --checkpoint-secs.
  config.num_headers_main = 400;
  config.avg_items_per_header = 3;
  config.num_categories = 12;
  config.seed = flags.seed;
  ErpDataset dataset =
      CheckOk(ErpDataset::Create(&db, config), "dataset creation");
  // Header and Item merge together (Section 5.2) so join pruning keeps
  // succeeding; a low threshold keeps the daemon busy.
  db.RegisterMergeGroup({"Header", "Item"}, /*delta_row_threshold=*/512);

  AggregateCacheManager cache(&db);

  std::vector<WorkloadQuery> queries;
  auto add_query = [&queries](std::string label, AggregateQuery query) {
    WorkloadQuery wq;
    wq.label = std::move(label);
    wq.functions = query.AggregateFunctions();
    wq.query = std::move(query);
    queries.push_back(std::move(wq));
  };
  add_query("item-totals", dataset.ItemTotalsByCategoryQuery());
  add_query("revenue-by-year", dataset.RevenueByYearQuery());
  add_query("profit-2013", dataset.ProfitByCategoryQuery(2013));
  add_query("profit-2014", dataset.ProfitByCategoryQuery(2014));

  // Faults arm only after the dataset is loaded and the initial merge has
  // run: the harness tests fault tolerance of the *serving* path, and a
  // failed setup would abort before any concurrency happens.
  if (!flags.faults.empty()) {
    CheckOk(FaultInjector::Global().ArmFromSpec(flags.faults), "--faults");
    FaultInjector::Global().Reseed(flags.seed);
  }

  // Governance knobs likewise engage only for the serving phase, so a tight
  // limit cannot starve dataset creation.
  if (!flags.mem_limit.empty()) {
    size_t limit_bytes = 0;
    if (!ParseByteSize(flags.mem_limit.c_str(), &limit_bytes)) {
      std::fprintf(stderr, "bad --mem-limit=%s\n", flags.mem_limit.c_str());
      return 2;
    }
    MemoryTracker::Process().set_limit(limit_bytes);
  }
  if (flags.max_concurrent > 0) {
    AdmissionController::Config admission;
    admission.max_concurrent = static_cast<size_t>(flags.max_concurrent);
    AdmissionController::Global().Configure(admission);
  }
  SharedState state;
  state.deadline_ms = flags.deadline_ms;
  state.governance_active = flags.deadline_ms > 0 ||
                            !flags.mem_limit.empty() ||
                            flags.max_concurrent > 0;

  bool daemon_enabled = true;
  MergeDaemonOptions daemon_options =
      MergeDaemon::OptionsFromEnv(&daemon_enabled);
  MergeDaemon daemon(db, daemon_options);
  if (daemon_enabled) daemon.Start();

  std::printf(
      "stress_concurrent: writers=%d readers=%d seconds=%.1f threads=%zu "
      "daemon=%s faults=%s\n",
      flags.writers, flags.readers, flags.seconds, parallelism,
      daemon_enabled ? "on" : "off",
      FaultInjector::Global().AnyArmed() ? "armed" : "none");

  QuiesceBarrier barrier(flags.writers + flags.readers);
  std::vector<std::thread> threads;
  for (int w = 0; w < flags.writers; ++w) {
    threads.emplace_back(WriterLoop, w, flags.seed, std::ref(dataset),
                         std::ref(state), std::ref(barrier));
  }
  for (int r = 0; r < flags.readers; ++r) {
    threads.emplace_back(ReaderLoop, r, std::ref(db), std::ref(cache),
                         std::cref(queries), std::ref(state),
                         std::ref(barrier));
  }

  Stopwatch run_watch;
  int checkpoints = 0;
  double next_checkpoint = flags.checkpoint_secs;
  while (run_watch.ElapsedMillis() < flags.seconds * 1000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // SIGUSR1 asks for a flight-recorder dump; the handler only sets a
    // flag, so the main loop ships the timeline from safe context here.
    if (FlightRecorder::RequestedDumpPending()) {
      FlightRecorder::Global().DumpToStderr();
    }
    if (run_watch.ElapsedMillis() >= next_checkpoint * 1000.0) {
      daemon.Pause();
      barrier.BeginQuiesce();
      RunCheckpoint(db, cache, queries, state, ++checkpoints);
      barrier.EndQuiesce();
      daemon.Resume();
      next_checkpoint += flags.checkpoint_secs;
    }
  }

  state.stop.store(true);
  barrier.EndQuiesce();  // Release any worker parked right at shutdown.
  for (std::thread& thread : threads) thread.join();
  daemon.Stop();

  // Final checkpoint on the fully quiesced system.
  RunCheckpoint(db, cache, queries, state, ++checkpoints);

  MergeDaemonStats daemon_stats = daemon.stats();
  bench::ResultTable table({"metric", "value"});
  table.AddRow({"writer txns", StrFormat("%llu",
      static_cast<unsigned long long>(state.writer_txns.load()))});
  table.AddRow({"reader queries", StrFormat("%llu",
      static_cast<unsigned long long>(state.reader_queries.load()))});
  table.AddRow({"checkpoints", StrFormat("%d", checkpoints)});
  table.AddRow({"daemon ticks", StrFormat("%llu",
      static_cast<unsigned long long>(daemon_stats.ticks))});
  table.AddRow({"merges committed", StrFormat("%llu",
      static_cast<unsigned long long>(daemon_stats.merges_succeeded))});
  table.AddRow({"merges aborted", StrFormat("%llu",
      static_cast<unsigned long long>(daemon_stats.merges_aborted))});
  table.AddRow({"faults fired", StrFormat("%llu",
      static_cast<unsigned long long>(FaultInjector::Global().TotalFired()))});
  table.AddRow({"injected-fault fallbacks", StrFormat("%llu",
      static_cast<unsigned long long>(state.cache_fallbacks.load()))});
  table.AddRow({"governance sheds", StrFormat("%llu",
      static_cast<unsigned long long>(state.governance_sheds.load()))});
  table.AddRow({"divergences", StrFormat("%llu",
      static_cast<unsigned long long>(state.divergences.load()))});
  table.AddRow({"hard errors", StrFormat("%llu",
      static_cast<unsigned long long>(state.hard_errors.load()))});
  table.Print();

  // The registry saw every lookup this process made; each consulted lookup
  // must have resolved to exactly one of hit or miss.
  const EngineMetrics& em = EngineMetrics::Get();
  uint64_t lookups = em.cache_lookups->Value();
  uint64_t hits = em.cache_hits->Value();
  uint64_t misses = em.cache_misses->Value();
  bool metrics_violation = hits + misses != lookups;
  if (metrics_violation) {
    std::fprintf(stderr,
                 "METRICS VIOLATION: hits(%llu) + misses(%llu) != "
                 "lookups(%llu)\n",
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(misses),
                 static_cast<unsigned long long>(lookups));
  }
  // Every worker has joined and the final checkpoint ran to completion, so
  // any per-query reservation still tracked was leaked by an abort path.
  size_t query_bytes = MemoryTracker::Queries().used();
  if (query_bytes != 0) {
    metrics_violation = true;
    std::fprintf(stderr,
                 "TRACKER VIOLATION: %zu query-reserved bytes still "
                 "tracked at exit\n",
                 query_bytes);
  }
  std::printf("--- final metrics (prometheus) ---\n%s",
              MetricsRegistry::Global().RenderPrometheus().c_str());

  const double elapsed_secs = run_watch.ElapsedMillis() / 1000.0;
  ctx.report().AddScalar("writer_txns", {},
                         static_cast<double>(state.writer_txns.load()));
  ctx.report().AddScalar("reader_queries", {},
                         static_cast<double>(state.reader_queries.load()));
  ctx.report().AddScalar(
      "reader_queries_per_sec", {},
      static_cast<double>(state.reader_queries.load()) / elapsed_secs,
      "1/s");
  ctx.report().AddScalar("merges_committed", {},
                         static_cast<double>(daemon_stats.merges_succeeded));
  ctx.report().AddScalar("merges_aborted", {},
                         static_cast<double>(daemon_stats.merges_aborted));
  ctx.report().AddScalar("divergences", {},
                         static_cast<double>(state.divergences.load()));
  ctx.report().AddScalar("hard_errors", {},
                         static_cast<double>(state.hard_errors.load()));
  ctx.report().AddScalar("governance_sheds", {},
                         static_cast<double>(state.governance_sheds.load()));
  ctx.report().AddScalar(
      "flight_events_recorded", {},
      static_cast<double>(FlightRecorder::Global().recorded_events()));
  ctx.report().AddScalar(
      "flight_events_lost", {},
      static_cast<double>(FlightRecorder::Global().lost_events()));
  {
    std::lock_guard<std::mutex> lock(state.latency_mu);
    if (!state.reader_latencies_ms.empty()) {
      // The cached-path latency distribution across every reader's whole
      // run — the figure the flight-recorder overhead budget is judged on.
      ctx.report().AddLatency(
          "reader_query_ms", {},
          SummarizeLatencies(std::move(state.reader_latencies_ms)));
    }
  }

  bool failed = state.divergences.load() != 0 ||
                state.hard_errors.load() != 0 || metrics_violation;
  std::printf("%s\n", failed ? "FAIL" : "PASS");
  obs_server.Stop();  // Join handler threads before locals unwind.
  MetricsHistory::Global().Stop();
  if (!ctx.Finish()) return 1;
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace aggcache

int main(int argc, char** argv) { return aggcache::Run(argc, argv); }
