// Durability & warm restart — WAL append overhead and restart-to-first-hit.
//
// Two questions the durability subsystem must answer with numbers:
//
//  1. What does logging cost the insert path? Per-statement latency under
//     AGGCACHE_WAL=off/async/sync versus a memory-only engine. `off` and
//     `async` must stay within noise of memory-only (the write(2) is cheap);
//     `sync` pays the group-commit fdatasync and is reported, not gated.
//
//  2. What does a warm restart buy? After a crash, a cold node re-admits
//     cache entries only once their cost clears the admission bar — under a
//     high bar it never does, and every query pays the uncached price. A
//     warm node re-admits the persisted descriptors on first touch, so the
//     second query is already a cache hit.

#include <filesystem>

#include "bench/harness.h"
#include "obs/engine_metrics.h"
#include "storage/recovery.h"

namespace aggcache {
namespace bench {
namespace {

constexpr int kInsertReps = 2000;
constexpr size_t kRestartObjects = 6000;

/// Header/Item schema matching the paper's running example.
void CreateSchema(Database* db, Table** header, Table** item) {
  *header = CheckOk(db->CreateTable(SchemaBuilder("Header")
                                        .AddColumn("HeaderID",
                                                   ColumnType::kInt64)
                                        .PrimaryKey()
                                        .AddColumn("FiscalYear",
                                                   ColumnType::kInt64)
                                        .OwnTid("tid_Header")
                                        .Build()),
                    "create Header");
  *item = CheckOk(db->CreateTable(SchemaBuilder("Item")
                                      .AddColumn("ItemID", ColumnType::kInt64)
                                      .PrimaryKey()
                                      .AddColumn("HeaderID",
                                                 ColumnType::kInt64)
                                      .References("Header", "tid_Header")
                                      .AddColumn("Amount", ColumnType::kDouble)
                                      .OwnTid("tid_Item")
                                      .Build()),
                  "create Item");
}

/// One business object: header + 2 items in an atomic write scope.
void InsertObject(Database* db, Table* header, Table* item, int64_t id,
                  int64_t* next_item_id) {
  ScopedTransaction scope = db->BeginAtomic();
  CheckOk(header->Insert(scope, {Value(id), Value(int64_t{2010 + id % 4})}),
          "insert header");
  for (int i = 0; i < 2; ++i) {
    CheckOk(item->Insert(scope, {Value((*next_item_id)++), Value(id),
                                 Value(1.5)}),
            "insert item");
  }
}

AggregateQuery RevenueQuery() {
  return QueryBuilder()
      .From("Header")
      .Join("Item", "HeaderID", "HeaderID")
      .GroupBy("Header", "FiscalYear")
      .Sum("Item", "Amount", "Revenue")
      .CountStar("NumItems")
      .Build();
}

void RunInsertOverhead(BenchContext& ctx, const std::filesystem::path& base,
                       int reps, ResultTable* table) {
  struct Mode {
    const char* name;
    bool durable;
    WalSyncPolicy policy;
  };
  const Mode kModes[] = {
      {"memory-only", false, WalSyncPolicy::kOff},
      {"off", true, WalSyncPolicy::kOff},
      {"async", true, WalSyncPolicy::kAsync},
      {"sync", true, WalSyncPolicy::kSync},
  };
  for (const Mode& mode : kModes) {
    std::filesystem::path dir = base / (std::string("insert_") + mode.name);
    std::filesystem::remove_all(dir);
    auto db = std::make_unique<Database>();
    std::unique_ptr<DurabilityManager> durability;
    if (mode.durable) {
      DurabilityOptions options;
      options.wal_policy = mode.policy;
      durability = CheckOk(
          DurabilityManager::Open(dir.string(), db.get(), options), "open");
    }
    Table* header = nullptr;
    Table* item = nullptr;
    CreateSchema(db.get(), &header, &item);
    int64_t next_id = 1;
    int64_t next_item_id = 1;
    LatencyStats stats = MeasureMs(reps, [&] {
      InsertObject(db.get(), header, item, next_id++, &next_item_id);
    });
    ctx.report().AddLatency("insert_ms", {{"wal", mode.name}}, stats);
    table->AddRow({mode.name, FormatMs(stats.median_ms),
                   FormatMs(stats.p95_ms)});
  }
}

void RunRestart(BenchContext& ctx, const std::filesystem::path& base,
                size_t objects, ResultTable* table) {
  std::filesystem::path dir = base / "restart";
  std::filesystem::remove_all(dir);

  // Life 1: populate, admit the revenue query, checkpoint (persisting the
  // cache descriptor), append a WAL tail, crash.
  AggregateQuery query = RevenueQuery();
  {
    auto db = std::make_unique<Database>();
    DurabilityOptions options;
    options.wal_policy = WalSyncPolicy::kAsync;
    auto durability = CheckOk(
        DurabilityManager::Open(dir.string(), db.get(), options), "open");
    Table* header = nullptr;
    Table* item = nullptr;
    CreateSchema(db.get(), &header, &item);
    int64_t next_item_id = 1;
    for (size_t i = 1; i <= objects; ++i) {
      InsertObject(db.get(), header, item, static_cast<int64_t>(i),
                   &next_item_id);
    }
    CheckOk(db->MergeAll(), "merge");
    AggregateCacheManager cache(db.get());
    durability->SetDescriptorSource(&cache);
    Transaction txn = db->Begin();
    CheckOk(cache.Execute(query, txn, ExecutionOptions()).status(), "admit");
    if (!CheckOk(durability->Checkpoint(), "checkpoint")) {
      std::fprintf(stderr, "FATAL checkpoint skipped\n");
      std::abort();
    }
    durability->SetDescriptorSource(nullptr);
    // A tail of post-checkpoint inserts so recovery also replays.
    for (size_t i = 0; i < objects / 20; ++i) {
      InsertObject(db.get(), header, item,
                   static_cast<int64_t>(objects + 1 + i), &next_item_id);
    }
    durability->SimulateCrash();
  }

  // Life 2: recover once, then serve the first two queries through a cold
  // cache and a warm cache under the same (high) admission bar.
  auto db = std::make_unique<Database>();
  Stopwatch recovery_watch;
  auto durability = CheckOk(
      DurabilityManager::Open(dir.string(), db.get(), DurabilityOptions()),
      "recover");
  double recovery_ms = recovery_watch.ElapsedMillis();
  ctx.report().AddScalar("recovery_ms", {{"mode", "checkpoint+tail"}},
                         recovery_ms, "ms");
  ctx.report().AddScalar(
      "recovery_replayed_records", {},
      static_cast<double>(durability->recovery_report().replayed_records),
      "records");

  AggregateCacheManager::Config config;
  config.min_main_exec_ms = 1e9;  // Nothing clears the bar on cost alone.

  const EngineMetrics& metrics = EngineMetrics::Get();
  struct FirstQueries {
    double first_ms = 0.0;
    double second_ms = 0.0;
    uint64_t hits = 0;
  };
  auto run_two_queries = [&](AggregateCacheManager* cache) {
    FirstQueries out;
    uint64_t hits_before = metrics.cache_hits->Value();
    Stopwatch first;
    Transaction txn = db->Begin();
    CheckOk(cache->Execute(query, txn, ExecutionOptions()).status(), "q1");
    out.first_ms = first.ElapsedMillis();
    Stopwatch second;
    CheckOk(cache->Execute(query, txn, ExecutionOptions()).status(), "q2");
    out.second_ms = second.ElapsedMillis();
    out.hits = metrics.cache_hits->Value() - hits_before;
    return out;
  };

  AggregateCacheManager cold(db.get(), config);
  FirstQueries cold_q = run_two_queries(&cold);

  AggregateCacheManager warm(db.get(), config);
  warm.ImportWarmDescriptors(durability->TakeWarmDescriptors());
  uint64_t warm_admissions_before =
      metrics.recovery_warm_admissions->Value();
  FirstQueries warm_q = run_two_queries(&warm);
  uint64_t warm_admissions =
      metrics.recovery_warm_admissions->Value() - warm_admissions_before;

  for (const auto& [mode, q] :
       {std::pair<const char*, FirstQueries&>{"cold", cold_q},
        std::pair<const char*, FirstQueries&>{"warm", warm_q}}) {
    ctx.report().AddScalar("first_query_ms", {{"restart", mode}}, q.first_ms,
                           "ms");
    ctx.report().AddScalar("second_query_ms", {{"restart", mode}},
                           q.second_ms, "ms");
    ctx.report().AddScalar("hits_in_first_two_queries", {{"restart", mode}},
                           static_cast<double>(q.hits), "hits");
    table->AddRow({std::string("restart ") + mode, FormatMs(q.first_ms),
                   FormatMs(q.second_ms)});
  }
  ctx.report().AddScalar("warm_admissions", {},
                         static_cast<double>(warm_admissions), "entries");

  if (warm_q.hits == 0) {
    std::fprintf(stderr,
                 "FATAL warm restart produced no cache hit in two queries\n");
    std::abort();
  }
  if (cold_q.hits != 0) {
    std::fprintf(stderr,
                 "FATAL cold restart unexpectedly hit the cache under the "
                 "admission bar\n");
    std::abort();
  }
}

void Run(BenchContext& ctx) {
  int insert_reps = ctx.QuickOr<int>(200, kInsertReps);
  size_t objects = ctx.QuickOr<size_t>(600, kRestartObjects);
  ctx.report().SetConfig("insert_reps", static_cast<int64_t>(insert_reps));
  ctx.report().SetConfig("restart_objects", static_cast<int64_t>(objects));
  PrintBanner("Durability: WAL overhead and warm restart",
              "insert latency per sync policy; restart-to-first-hit cold vs "
              "warm",
              "off/async logging stays near memory-only insert cost; warm "
              "descriptor re-admission turns the second post-restart query "
              "into a cache hit while a cold node keeps paying full price");

  std::filesystem::path base = "bench_recovery_data";
  ResultTable insert_table({"wal_mode", "insert_median_ms", "insert_p95_ms"});
  RunInsertOverhead(ctx, base, insert_reps, &insert_table);
  insert_table.Print();

  ResultTable restart_table({"scenario", "first_query_ms", "second_query_ms"});
  RunRestart(ctx, base, objects, &restart_table);
  restart_table.Print();
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::ApplyThreadsFlag(argc, argv);
  aggcache::BenchContext ctx(argc, argv, "recovery");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
