// Figure 10 — Join predicate pushdown benefit on the non-prunable subjoin
// Header_delta ⋈ Item_main, across Item_main sizes and varying numbers of
// matching records.
//
// Paper result: pushdown accelerates the subjoin up to ~4x, with the
// largest benefit when few records match relative to the main partition
// size; the advantage shrinks as the match count grows.
//
// Construction: headers batch A are merged; headers batch B stay in the
// header delta; all items (referencing A and B) are merged into the item
// main. Items referencing B are the "matching records" of the subjoin.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr int kReps = 3;
constexpr size_t kDeltaHeaders = 2000;

struct Setup {
  std::unique_ptr<Database> db;
  AggregateQuery query;
};

Setup Build(size_t item_main_rows, double match_fraction,
            size_t main_headers, size_t delta_headers) {
  Setup setup;
  setup.db = std::make_unique<Database>();
  Database& db = *setup.db;
  Table* header = CheckOk(
      db.CreateTable(SchemaBuilder("Header")
                         .AddColumn("HeaderID", ColumnType::kInt64)
                         .PrimaryKey()
                         .AddColumn("FiscalYear", ColumnType::kInt64)
                         .OwnTid("tid_Header")
                         .Build()),
      "header");
  Table* item = CheckOk(
      db.CreateTable(SchemaBuilder("Item")
                         .AddColumn("ItemID", ColumnType::kInt64)
                         .PrimaryKey()
                         .AddColumn("HeaderID", ColumnType::kInt64)
                         .References("Header", "tid_Header")
                         .AddColumn("Price", ColumnType::kDouble)
                         .OwnTid("tid_Item")
                         .Build()),
      "item");

  // Batch A headers, merged into main.
  {
    Transaction txn = db.Begin();
    for (size_t h = 1; h <= main_headers; ++h) {
      CheckOk(header->Insert(txn, {Value(static_cast<int64_t>(h)),
                                   Value(int64_t{2013})}),
              "header insert");
    }
  }
  CheckOk(db.Merge("Header"), "merge header");

  // Batch B headers: remain in the header delta.
  {
    Transaction txn = db.Begin();
    for (size_t h = 0; h < delta_headers; ++h) {
      CheckOk(header->Insert(
                  txn, {Value(static_cast<int64_t>(main_headers + h + 1)),
                        Value(int64_t{2014})}),
              "header insert B");
    }
  }

  // Items: `match_fraction` of them reference batch B, the rest batch A.
  Rng rng(7);
  {
    Transaction txn = db.Begin();
    for (size_t i = 1; i <= item_main_rows; ++i) {
      int64_t header_id;
      if (rng.Chance(match_fraction)) {
        header_id = static_cast<int64_t>(
            main_headers +
            static_cast<size_t>(rng.UniformInt(1, delta_headers)));
      } else {
        header_id = rng.UniformInt(1, static_cast<int64_t>(main_headers));
      }
      CheckOk(item->Insert(txn, {Value(static_cast<int64_t>(i)),
                                 Value(header_id),
                                 Value(rng.UniformDouble(1.0, 100.0))}),
              "item insert");
    }
  }
  // Merge only the Item table: all items land in the item main while batch
  // B headers stay in the header delta.
  CheckOk(db.Merge("Item"), "merge item");

  setup.query = QueryBuilder()
                    .From("Header")
                    .Join("Item", "HeaderID", "HeaderID")
                    .GroupBy("Header", "FiscalYear")
                    .Sum("Item", "Price", "revenue")
                    .CountStar("n")
                    .Build();
  return setup;
}

void Run(BenchContext& ctx) {
  PrintBanner("Figure 10",
              "predicate pushdown on the non-prunable Header_delta x "
              "Item_main subjoin",
              "up to ~4x faster with pushdown; benefit largest when few "
              "records match, shrinking as matches grow");

  ResultTable table({"item_main_rows", "matching_rows", "regular_ms",
                     "pushdown_ms", "speedup"});

  size_t main_headers = ctx.QuickOr<size_t>(2000, 20000);
  size_t delta_headers = ctx.QuickOr<size_t>(200, kDeltaHeaders);
  std::vector<size_t> main_sizes =
      ctx.quick() ? std::vector<size_t>{10000, 30000}
                  : std::vector<size_t>{100000, 300000, 1000000};
  std::vector<double> fractions = ctx.quick()
                                      ? std::vector<double>{0.01, 0.2}
                                      : std::vector<double>{0.002, 0.01,
                                                            0.05, 0.2};
  ctx.report().SetConfig("main_headers", static_cast<int64_t>(main_headers));
  ctx.report().SetConfig("delta_headers",
                         static_cast<int64_t>(delta_headers));
  ctx.report().SetConfig("reps", static_cast<int64_t>(kReps));

  for (size_t main_rows : main_sizes) {
    for (double fraction : fractions) {
      Setup setup =
          Build(main_rows, fraction, main_headers, delta_headers);
      Database& db = *setup.db;
      BoundQuery bound =
          CheckOk(BoundQuery::Bind(db, setup.query), "bind");
      std::vector<MdBinding> mds = ResolveMds(bound);
      SubjoinCombination delta_main = {{0, PartitionKind::kDelta},
                                       {0, PartitionKind::kMain}};
      Snapshot now = db.txn_manager().GlobalSnapshot();
      Executor executor(&db);

      // Count the actual matching rows for the report.
      auto match_result =
          CheckOk(executor.ExecuteSubjoin(bound, delta_main, now), "count");
      int64_t matches = 0;
      for (const auto& [key, entry] : match_result.groups()) {
        matches += entry.count_star;
      }

      std::map<std::string, std::string> labels = {
          {"item_main_rows", StrFormat("%zu", main_rows)},
          {"match_fraction", StrFormat("%g", fraction)}};
      LatencyStats regular = MeasureMs(kReps, [&] {
        CheckOk(executor.ExecuteSubjoin(bound, delta_main, now).status(),
                "regular");
      });
      std::vector<FilterPredicate> filters =
          DerivePushdownFilters(bound, mds, delta_main);
      LatencyStats pushed = MeasureMs(kReps, [&] {
        CheckOk(executor.ExecuteSubjoin(bound, delta_main, now, filters)
                    .status(),
                "pushdown");
      });
      auto with_mode = [&labels](const char* mode) {
        std::map<std::string, std::string> l = labels;
        l["mode"] = mode;
        return l;
      };
      ctx.report().AddLatency("subjoin_ms", with_mode("regular"), regular);
      ctx.report().AddLatency("subjoin_ms", with_mode("pushdown"), pushed);
      ctx.report().AddScalar("pushdown_speedup", labels,
                             regular.median_ms / pushed.median_ms);
      table.AddRow({StrFormat("%zu", main_rows), StrFormat("%lld",
                        static_cast<long long>(matches)),
                    FormatMs(regular.median_ms), FormatMs(pushed.median_ms),
                    StrFormat("%.1fx",
                              regular.median_ms / pushed.median_ms)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::ApplyThreadsFlag(argc, argv);
  aggcache::BenchContext ctx(argc, argv, "fig10_pushdown");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
