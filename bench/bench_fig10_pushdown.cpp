// Figure 10 — Join predicate pushdown benefit on the non-prunable subjoin
// Header_delta ⋈ Item_main, across Item_main sizes and varying numbers of
// matching records.
//
// Paper result: pushdown accelerates the subjoin up to ~4x, with the
// largest benefit when few records match relative to the main partition
// size; the advantage shrinks as the match count grows.
//
// Construction: headers batch A are merged; headers batch B stay in the
// header delta; all items (referencing A and B) are merged into the item
// main. Items referencing B are the "matching records" of the subjoin.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr int kReps = 3;
constexpr size_t kDeltaHeaders = 2000;

struct Setup {
  std::unique_ptr<Database> db;
  AggregateQuery query;
};

Setup Build(size_t item_main_rows, double match_fraction) {
  Setup setup;
  setup.db = std::make_unique<Database>();
  Database& db = *setup.db;
  Table* header = CheckOk(
      db.CreateTable(SchemaBuilder("Header")
                         .AddColumn("HeaderID", ColumnType::kInt64)
                         .PrimaryKey()
                         .AddColumn("FiscalYear", ColumnType::kInt64)
                         .OwnTid("tid_Header")
                         .Build()),
      "header");
  Table* item = CheckOk(
      db.CreateTable(SchemaBuilder("Item")
                         .AddColumn("ItemID", ColumnType::kInt64)
                         .PrimaryKey()
                         .AddColumn("HeaderID", ColumnType::kInt64)
                         .References("Header", "tid_Header")
                         .AddColumn("Price", ColumnType::kDouble)
                         .OwnTid("tid_Item")
                         .Build()),
      "item");

  size_t main_headers = 20000;
  // Batch A headers, merged into main.
  {
    Transaction txn = db.Begin();
    for (size_t h = 1; h <= main_headers; ++h) {
      CheckOk(header->Insert(txn, {Value(static_cast<int64_t>(h)),
                                   Value(int64_t{2013})}),
              "header insert");
    }
  }
  CheckOk(db.Merge("Header"), "merge header");

  // Batch B headers: remain in the header delta.
  {
    Transaction txn = db.Begin();
    for (size_t h = 0; h < kDeltaHeaders; ++h) {
      CheckOk(header->Insert(
                  txn, {Value(static_cast<int64_t>(main_headers + h + 1)),
                        Value(int64_t{2014})}),
              "header insert B");
    }
  }

  // Items: `match_fraction` of them reference batch B, the rest batch A.
  Rng rng(7);
  {
    Transaction txn = db.Begin();
    for (size_t i = 1; i <= item_main_rows; ++i) {
      int64_t header_id;
      if (rng.Chance(match_fraction)) {
        header_id = static_cast<int64_t>(
            main_headers +
            static_cast<size_t>(rng.UniformInt(1, kDeltaHeaders)));
      } else {
        header_id = rng.UniformInt(1, static_cast<int64_t>(main_headers));
      }
      CheckOk(item->Insert(txn, {Value(static_cast<int64_t>(i)),
                                 Value(header_id),
                                 Value(rng.UniformDouble(1.0, 100.0))}),
              "item insert");
    }
  }
  // Merge only the Item table: all items land in the item main while batch
  // B headers stay in the header delta.
  CheckOk(db.Merge("Item"), "merge item");

  setup.query = QueryBuilder()
                    .From("Header")
                    .Join("Item", "HeaderID", "HeaderID")
                    .GroupBy("Header", "FiscalYear")
                    .Sum("Item", "Price", "revenue")
                    .CountStar("n")
                    .Build();
  return setup;
}

void Run() {
  PrintBanner("Figure 10",
              "predicate pushdown on the non-prunable Header_delta x "
              "Item_main subjoin",
              "up to ~4x faster with pushdown; benefit largest when few "
              "records match, shrinking as matches grow");

  ResultTable table({"item_main_rows", "matching_rows", "regular_ms",
                     "pushdown_ms", "speedup"});

  for (size_t main_rows : {100000u, 300000u, 1000000u}) {
    for (double fraction : {0.002, 0.01, 0.05, 0.2}) {
      Setup setup = Build(main_rows, fraction);
      Database& db = *setup.db;
      BoundQuery bound =
          CheckOk(BoundQuery::Bind(db, setup.query), "bind");
      std::vector<MdBinding> mds = ResolveMds(bound);
      SubjoinCombination delta_main = {{0, PartitionKind::kDelta},
                                       {0, PartitionKind::kMain}};
      Snapshot now = db.txn_manager().GlobalSnapshot();
      Executor executor(&db);

      // Count the actual matching rows for the report.
      auto match_result =
          CheckOk(executor.ExecuteSubjoin(bound, delta_main, now), "count");
      int64_t matches = 0;
      for (const auto& [key, entry] : match_result.groups()) {
        matches += entry.count_star;
      }

      double regular = MedianMs(kReps, [&] {
        CheckOk(executor.ExecuteSubjoin(bound, delta_main, now).status(),
                "regular");
      });
      std::vector<FilterPredicate> filters =
          DerivePushdownFilters(bound, mds, delta_main);
      double pushed = MedianMs(kReps, [&] {
        CheckOk(executor.ExecuteSubjoin(bound, delta_main, now, filters)
                    .status(),
                "pushdown");
      });
      table.AddRow({StrFormat("%zu", main_rows), StrFormat("%lld",
                        static_cast<long long>(matches)),
                    FormatMs(regular), FormatMs(pushed),
                    StrFormat("%.1fx", regular / pushed)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main() {
  aggcache::bench::Run();
  return 0;
}
