// Section 6.3 — Insert overhead of referential-integrity checking and of
// the matching-dependency tid lookup, as a google-benchmark microbenchmark.
//
// Paper result: inserting an Item row without any checks takes about 50% of
// the time of an insert with referential-integrity checks; the additional
// tid lookup costs 20-30% of the RI-check time (and can be combined with
// the RI check, which this implementation does: one primary-key probe
// serves both).

#include "benchmark/benchmark.h"
#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

struct Fixture {
  Fixture(size_t num_headers) {
    ErpConfig config;
    config.num_headers_main = num_headers;
    config.num_categories = 50;
    // The experiment only exercises the Item insert path; keep the
    // preloaded item population minimal so fixture setup stays fast.
    config.avg_items_per_header = 1;
    dataset = std::make_unique<ErpDataset>(
        CheckOk(ErpDataset::Create(&db, config), "erp"));
    num_headers_loaded = num_headers;
  }

  Database db;
  std::unique_ptr<ErpDataset> dataset;
  size_t num_headers_loaded = 0;
  int64_t next_item_id = 100000000;
};

void InsertItems(::benchmark::State& state, const InsertOptions& options) {
  Fixture fixture(static_cast<size_t>(state.range(0)));
  Table* item = fixture.dataset->item();
  Rng rng(5);
  int64_t max_header = static_cast<int64_t>(fixture.num_headers_loaded);
  for (auto _ : state) {
    Transaction txn = fixture.db.Begin();
    Status status = item->Insert(
        txn,
        {Value(fixture.next_item_id++), Value(rng.UniformInt(1, max_header)),
         Value(int64_t{1}), Value(10.0), Value(int64_t{1})},
        options);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InsertNoChecks(::benchmark::State& state) {
  InsertOptions options;
  options.check_referential_integrity = false;
  options.maintain_tid_columns = false;
  InsertItems(state, options);
}

void BM_InsertWithRiCheck(::benchmark::State& state) {
  InsertOptions options;
  options.check_referential_integrity = true;
  options.maintain_tid_columns = false;
  InsertItems(state, options);
}

void BM_InsertWithRiCheckAndTidLookup(::benchmark::State& state) {
  InsertOptions options;  // Both enabled: the production path.
  InsertItems(state, options);
}

/// Console output as usual, plus every finished run lands in the
/// BenchReport as a scalar sample (ns per inserted item).
class CaptureReporter : public ::benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(BenchContext* ctx) : ctx_(ctx) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.iterations == 0) continue;
      double ns_per_item = run.real_accumulated_time /
                           static_cast<double>(run.iterations) * 1e9;
      ctx_->report().AddScalar("insert_ns_per_item",
                               {{"case", run.benchmark_name()}}, ns_per_item,
                               "ns");
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  BenchContext* ctx_;
};

void RegisterCases(BenchContext& ctx) {
  // Registered at runtime (not via the BENCHMARK macro) so quick mode can
  // shrink both the preloaded header population and the fixed iteration
  // count; a fixed count keeps google-benchmark to a single measurement
  // pass per case (fixture setup loads the full header table each pass).
  const int64_t iterations = ctx.QuickOr<int64_t>(5000, 50000);
  const std::vector<int64_t> header_counts =
      ctx.quick() ? std::vector<int64_t>{10000}
                  : std::vector<int64_t>{10000, 100000};
  ctx.report().SetConfig("iterations", iterations);
  struct Case {
    const char* name;
    void (*fn)(::benchmark::State&);
  };
  for (const Case& c :
       {Case{"BM_InsertNoChecks", BM_InsertNoChecks},
        Case{"BM_InsertWithRiCheck", BM_InsertWithRiCheck},
        Case{"BM_InsertWithRiCheckAndTidLookup",
             BM_InsertWithRiCheckAndTidLookup}}) {
    auto* bench = ::benchmark::RegisterBenchmark(c.name, c.fn);
    for (int64_t headers : header_counts) bench->Arg(headers);
    bench->Iterations(iterations);
  }
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::PrintBanner(
      "Section 6.3", "item insert overhead (RI check + MD tid lookup)",
      "no-checks insert ~50% of insert with RI checks; tid lookup adds "
      "20-30% of the RI-check time, shared with the RI probe");
  aggcache::BenchContext ctx(argc, argv, "sec63_insert_overhead");
  aggcache::bench::RegisterCases(ctx);
  // Hide the harness flags from google-benchmark's parser, which rejects
  // any unrecognized --flag.
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0 || arg == "--quick") {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  ::benchmark::Initialize(&bench_argc, bench_argv.data());
  aggcache::bench::CaptureReporter reporter(&ctx);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  return ctx.Finish() ? 0 : 1;
}
