// Section 6.3 — Insert overhead of referential-integrity checking and of
// the matching-dependency tid lookup, as a google-benchmark microbenchmark.
//
// Paper result: inserting an Item row without any checks takes about 50% of
// the time of an insert with referential-integrity checks; the additional
// tid lookup costs 20-30% of the RI-check time (and can be combined with
// the RI check, which this implementation does: one primary-key probe
// serves both).

#include "benchmark/benchmark.h"
#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

struct Fixture {
  Fixture(size_t num_headers) {
    ErpConfig config;
    config.num_headers_main = num_headers;
    config.num_categories = 50;
    // The experiment only exercises the Item insert path; keep the
    // preloaded item population minimal so fixture setup stays fast.
    config.avg_items_per_header = 1;
    dataset = std::make_unique<ErpDataset>(
        CheckOk(ErpDataset::Create(&db, config), "erp"));
    num_headers_loaded = num_headers;
  }

  Database db;
  std::unique_ptr<ErpDataset> dataset;
  size_t num_headers_loaded = 0;
  int64_t next_item_id = 100000000;
};

void InsertItems(::benchmark::State& state, const InsertOptions& options) {
  Fixture fixture(static_cast<size_t>(state.range(0)));
  Table* item = fixture.dataset->item();
  Rng rng(5);
  int64_t max_header = static_cast<int64_t>(fixture.num_headers_loaded);
  for (auto _ : state) {
    Transaction txn = fixture.db.Begin();
    Status status = item->Insert(
        txn,
        {Value(fixture.next_item_id++), Value(rng.UniformInt(1, max_header)),
         Value(int64_t{1}), Value(10.0), Value(int64_t{1})},
        options);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InsertNoChecks(::benchmark::State& state) {
  InsertOptions options;
  options.check_referential_integrity = false;
  options.maintain_tid_columns = false;
  InsertItems(state, options);
}

void BM_InsertWithRiCheck(::benchmark::State& state) {
  InsertOptions options;
  options.check_referential_integrity = true;
  options.maintain_tid_columns = false;
  InsertItems(state, options);
}

void BM_InsertWithRiCheckAndTidLookup(::benchmark::State& state) {
  InsertOptions options;  // Both enabled: the production path.
  InsertItems(state, options);
}

// Fixed iteration counts keep google-benchmark to a single measurement
// pass per case (fixture setup loads the full header table each pass).
BENCHMARK(BM_InsertNoChecks)->Arg(10000)->Arg(100000)->Iterations(50000);
BENCHMARK(BM_InsertWithRiCheck)->Arg(10000)->Arg(100000)->Iterations(50000);
BENCHMARK(BM_InsertWithRiCheckAndTidLookup)
    ->Arg(10000)
    ->Arg(100000)
    ->Iterations(50000);

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::PrintBanner(
      "Section 6.3", "item insert overhead (RI check + MD tid lookup)",
      "no-checks insert ~50% of insert with RI checks; tid lookup adds "
      "20-30% of the RI-check time, shared with the RI probe");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
