// Figure 7 — Join performance of the four execution strategies as a
// function of the Item delta size (Header delta ~ Item delta / 10, empty
// ProductCategory delta), on the three-table profit query of Listing 1.
//
// Paper result: with small deltas the cached aggregate is an order of
// magnitude faster than uncached execution; empty-delta pruning brings
// ~10%; full pruning is on average ~4x faster than cached-without-pruning;
// all strategies degrade as the delta grows (the delta must be aggregated
// either way).

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kHeadersMain = 20000;  // ~200K items in main.
constexpr size_t kQuickHeadersMain = 2000;
constexpr int kReps = 3;

void Run(BenchContext& ctx) {
  PrintBanner("Figure 7",
              "join strategies vs Item-delta size (3-table join)",
              "cached ~10x uncached at small deltas; full pruning ~4x over "
              "cached-without-pruning");

  Database db;
  ErpConfig config;
  config.num_headers_main = ctx.QuickOr(kQuickHeadersMain, kHeadersMain);
  config.num_categories = 50;
  config.avg_items_per_header = 10;
  ErpDataset dataset = CheckOk(ErpDataset::Create(&db, config), "erp");
  AggregateCacheManager cache(&db);
  AggregateQuery query = dataset.ProfitByCategoryQuery(2013);
  CheckOk(cache.Prewarm(query), "prewarm");

  std::vector<size_t> delta_targets =
      ctx.quick() ? std::vector<size_t>{300, 1000, 3000}
                  : std::vector<size_t>{3000, 10000, 30000, 100000, 300000};
  ctx.report().SetConfig("headers_main",
                         static_cast<int64_t>(config.num_headers_main));
  const int reps = ctx.Reps(kReps, kReps);
  ctx.report().SetConfig("reps", static_cast<int64_t>(reps));
  std::vector<StrategySpec> strategies = JoinStrategies();

  std::vector<std::string> columns = {"item_delta_rows"};
  for (const StrategySpec& s : strategies) {
    columns.push_back(std::string(s.label) + "_ms");
  }
  for (const StrategySpec& s : strategies) {
    columns.push_back(std::string(s.label) + "_norm");
  }
  ResultTable table(columns);

  Rng rng(41);
  size_t inserted_items = 0;
  double norm_base = 0.0;  // Uncached time at the smallest delta.
  std::vector<double> full_pruning_speedup;
  for (size_t target : delta_targets) {
    while (inserted_items < target) {
      inserted_items += CheckOk(dataset.InsertBusinessObject(rng), "insert");
    }
    std::vector<std::string> row = {
        StrFormat("%zu", dataset.item()->group(0).delta.num_rows())};
    std::vector<double> times;
    for (const StrategySpec& s : strategies) {
      ExecutionOptions options;
      options.strategy = s.strategy;
      options.use_predicate_pushdown = s.pushdown;
      LatencyStats stats = MeasureMs(reps, [&] {
        Transaction txn = db.Begin();
        CheckOk(cache.Execute(query, txn, options).status(), "execute");
      });
      ctx.report().AddLatency("query_ms",
                              {{"strategy", s.label},
                               {"item_delta_target", StrFormat("%zu", target)}},
                              stats);
      times.push_back(stats.median_ms);
      row.push_back(FormatMs(stats.median_ms));
    }
    if (norm_base == 0.0) norm_base = times[0];
    for (double ms : times) row.push_back(FormatNorm(ms / norm_base));
    full_pruning_speedup.push_back(times[1] / times[3]);
    table.AddRow(std::move(row));
  }
  table.Print();

  double avg_speedup = 0.0;
  for (double s : full_pruning_speedup) avg_speedup += s;
  avg_speedup /= static_cast<double>(full_pruning_speedup.size());
  ctx.report().AddScalar("full_pruning_avg_speedup", {}, avg_speedup);
  std::printf("\nfull pruning vs cached-no-pruning: avg %.1fx speedup "
              "(paper: ~4x)\n",
              avg_speedup);
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  size_t threads = aggcache::bench::ApplyThreadsFlag(argc, argv);
  std::printf("threads: %zu\n", threads);
  aggcache::BenchContext ctx(argc, argv, "fig7_join_pruning");
  ctx.report().SetConfig("threads", static_cast<int64_t>(threads));
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
