#!/usr/bin/env bash
# Runs every benchmark binary and collects their BENCH_*.json reports.
#
# Usage: bench/run_all.sh [--quick] [--out=DIR] [--build=DIR] [--threads=N]
#
#   --quick      pass --quick to every binary (CI-sized datasets, seconds
#                instead of minutes) — also what bench/baseline/ was
#                recorded with
#   --out=DIR    where BENCH_*.json land (default: bench_results)
#   --build=DIR  build tree containing bench/ binaries (default: build)
#   --threads=N  forwarded to binaries that size the worker pool
#
# Exits non-zero if any binary is missing, fails, or does not produce its
# report. Compare two result sets with: tools/bench_diff OLD_DIR NEW_DIR

set -u

QUICK=""
OUT="bench_results"
BUILD="build"
THREADS=""

for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    --out=*) OUT="${arg#--out=}" ;;
    --build=*) BUILD="${arg#--build=}" ;;
    --threads=*) THREADS="$arg" ;;
    *)
      echo "run_all.sh: unknown argument $arg" >&2
      echo "usage: bench/run_all.sh [--quick] [--out=DIR] [--build=DIR] [--threads=N]" >&2
      exit 2
      ;;
  esac
done

# Scenario names must match the BenchContext scenario of each binary: the
# produced file is BENCH_<scenario>.json.
BENCHES=(
  "bench_fig6_maintenance:fig6_maintenance"
  "bench_fig7_join_pruning:fig7_join_pruning"
  "bench_fig8_growing_delta:fig8_growing_delta"
  "bench_fig9_chbench:fig9_chbench"
  "bench_fig10_pushdown:fig10_pushdown"
  "bench_fig11_hot_cold:fig11_hot_cold"
  "bench_sec62_memory_overhead:sec62_memory_overhead"
  "bench_sec63_insert_overhead:sec63_insert_overhead"
  "bench_ablation_subjoins:ablation_subjoins"
  "bench_ablation_merge_sync:ablation_merge_sync"
  "bench_ablation_main_comp:ablation_main_comp"
  "bench_ablation_locality:ablation_locality"
  "bench_parallel_scaling:parallel_scaling"
  "bench_recovery:recovery"
  "bench_overload:overload"
  "stress_concurrent:stress_concurrent"
)

mkdir -p "$OUT" || exit 1
failures=0

for entry in "${BENCHES[@]}"; do
  binary="${entry%%:*}"
  scenario="${entry##*:}"
  path="$BUILD/bench/$binary"
  if [ ! -x "$path" ]; then
    echo "run_all.sh: missing binary $path (build it first)" >&2
    failures=$((failures + 1))
    continue
  fi
  echo "=== $binary ==="
  # shellcheck disable=SC2086
  if ! "$path" $QUICK $THREADS "--json=$OUT/"; then
    echo "run_all.sh: $binary exited non-zero" >&2
    failures=$((failures + 1))
  fi
  if [ ! -s "$OUT/BENCH_$scenario.json" ]; then
    echo "run_all.sh: $binary produced no $OUT/BENCH_$scenario.json" >&2
    failures=$((failures + 1))
  fi
done

echo
echo "reports in $OUT:"
ls -1 "$OUT"/BENCH_*.json 2>/dev/null

if [ "$failures" -ne 0 ]; then
  echo "run_all.sh: $failures failure(s)" >&2
  exit 1
fi
