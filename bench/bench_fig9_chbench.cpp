// Figure 9 — CH-benCHmark queries Q3, Q5, Q9, Q10 under the four execution
// strategies, with 5% of orders/orderlines/neworders/stock rows populated
// into the delta partitions.
//
// Paper result: for aggregate queries joining more than three tables the
// cache benefit is only marginal without dynamic join pruning; full pruning
// accelerates execution by up to an order of magnitude over uncached.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr int kReps = 3;

void Run(BenchContext& ctx) {
  PrintBanner("Figure 9", "CH-benCHmark Q3/Q5/Q9/Q10 join strategies",
              "without pruning the cache is marginal for >3-table joins; "
              "full pruning up to ~10x vs uncached");

  Database db;
  ChBenchConfig config;
  config.num_warehouses = 2;
  config.num_items = ctx.QuickOr<size_t>(500, 2000);
  config.districts_per_warehouse = ctx.QuickOr<size_t>(4, 10);
  config.customers_per_district = ctx.QuickOr<size_t>(10, 30);
  config.orders_per_customer = ctx.QuickOr<size_t>(5, 10);
  config.avg_orderlines_per_order = 10;  // ~60K orderlines.
  ChBenchDataset dataset =
      CheckOk(ChBenchDataset::Create(&db, config), "chbench");
  AggregateCacheManager cache(&db);

  ctx.report().SetConfig("warehouses",
                         static_cast<int64_t>(config.num_warehouses));
  ctx.report().SetConfig("items", static_cast<int64_t>(config.num_items));
  ctx.report().SetConfig("reps", static_cast<int64_t>(kReps));

  std::vector<StrategySpec> strategies = JoinStrategies();
  std::vector<std::string> columns = {"query", "tables"};
  for (const StrategySpec& s : strategies) {
    columns.push_back(std::string(s.label) + "_ms");
  }
  columns.push_back("pruned/total");
  columns.push_back("speedup_vs_uncached");
  ResultTable table(columns);

  for (auto& [number, query] : dataset.AllQueries()) {
    CheckOk(cache.Prewarm(query), "prewarm");
    std::vector<std::string> row = {StrFormat("Q%d", number),
                                    StrFormat("%zu", query.tables.size())};
    std::vector<double> times;
    uint64_t pruned = 0;
    uint64_t total = 0;
    for (const StrategySpec& s : strategies) {
      ExecutionOptions options;
      options.strategy = s.strategy;
      LatencyStats stats = MeasureMs(kReps, [&] {
        Transaction txn = db.Begin();
        CheckOk(cache.Execute(query, txn, options).status(), "execute");
      });
      if (s.strategy == ExecutionStrategy::kCachedFullPruning) {
        pruned = cache.last_exec_stats().subjoins_pruned;
        total = pruned + cache.last_exec_stats().subjoins_executed;
      }
      ctx.report().AddLatency("query_ms",
                              {{"strategy", s.label},
                               {"query", StrFormat("Q%d", number)}},
                              stats);
      times.push_back(stats.median_ms);
      row.push_back(FormatMs(stats.median_ms));
    }
    row.push_back(StrFormat("%llu/%llu",
                            static_cast<unsigned long long>(pruned),
                            static_cast<unsigned long long>(total)));
    ctx.report().AddScalar("speedup_vs_uncached",
                           {{"query", StrFormat("Q%d", number)}},
                           times[0] / times[3]);
    row.push_back(StrFormat("%.1fx", times[0] / times[3]));
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  size_t threads = aggcache::bench::ApplyThreadsFlag(argc, argv);
  std::printf("threads: %zu\n", threads);
  aggcache::BenchContext ctx(argc, argv, "fig9_chbench");
  ctx.report().SetConfig("threads", static_cast<int64_t>(threads));
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
