// Ablation (Section 8 extension) — incremental main compensation of join
// entries via negative-delta correction joins, versus the baseline of
// rebuilding the cached entry when main-partition invalidations are
// detected.
//
// The paper leaves update handling for join aggregates as future work and
// sketches "keeping track of updates in a separate negative-delta
// partition"; this library implements that idea by restricting correction
// joins to the invalidated row sets. The bench measures the first cached
// query after a batch of updates, across batch sizes: correction cost
// scales with the number of invalidated rows, rebuild cost with the size of
// the main partitions.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kHeadersMain = 20000;
constexpr int kReps = 3;
size_t g_headers_main = kHeadersMain;

// No discarded warm-up here on purpose: each rep builds a fresh database
// and the measured region is precisely the *cold* first query after a
// batch of updates — warming would erase the effect under test.
LatencyStats MeasureFirstQueryAfterUpdates(bool incremental,
                                           size_t num_updates) {
  std::vector<double> times;
  for (int rep = 0; rep < kReps; ++rep) {
    Database db;
    ErpConfig config;
    config.num_headers_main = g_headers_main;
    config.num_categories = 50;
    ErpDataset dataset = CheckOk(ErpDataset::Create(&db, config), "erp");
    AggregateCacheManager::Config cache_config;
    cache_config.incremental_join_main_compensation = incremental;
    AggregateCacheManager cache(&db, cache_config);
    AggregateQuery query = dataset.ProfitByCategoryQuery(2013);
    CheckOk(cache.Prewarm(query), "prewarm");

    // Update a batch of headers in the main partition (the object tid is
    // preserved, so matching dependencies keep holding).
    Rng rng(static_cast<uint64_t>(num_updates) + rep);
    Transaction txn = db.Begin();
    Table* header = dataset.header();
    for (size_t u = 0; u < num_updates; ++u) {
      int64_t id =
          rng.UniformInt(1, static_cast<int64_t>(g_headers_main));
      auto loc = header->FindByPk(Value(id));
      if (!loc) continue;  // Already updated in this batch.
      int64_t year = header->ValueAt(*loc, 1).AsInt64();
      Value txn_type = header->ValueAt(*loc, 2);
      CheckOk(header->UpdateByPk(
                  txn, Value(id),
                  {Value(id),
                   Value(year == 2013 ? int64_t{2014} : int64_t{2013}),
                   txn_type}),
              "update");
    }

    Stopwatch watch;
    Transaction query_txn = db.Begin();
    CheckOk(cache.Execute(query, query_txn).status(), "execute");
    times.push_back(watch.ElapsedMillis());
  }
  return SummarizeLatencies(std::move(times));
}

void Run(BenchContext& ctx) {
  g_headers_main = ctx.QuickOr<size_t>(2000, kHeadersMain);
  ctx.report().SetConfig("headers_main",
                         static_cast<int64_t>(g_headers_main));
  ctx.report().SetConfig("reps", static_cast<int64_t>(kReps));
  PrintBanner("Ablation: join main compensation (Section 8 extension)",
              "negative-delta correction joins vs entry rebuild after "
              "main-partition updates",
              "the paper leaves join-entry update handling as future work; "
              "corrections should cost O(invalidated rows), rebuilds O(main "
              "size)");

  ResultTable table({"updated_headers", "incremental_ms", "rebuild_ms",
                     "speedup"});
  std::vector<size_t> batch_sizes =
      ctx.quick() ? std::vector<size_t>{10, 100, 500}
                  : std::vector<size_t>{10, 100, 1000, 5000};
  for (size_t updates : batch_sizes) {
    LatencyStats incremental = MeasureFirstQueryAfterUpdates(true, updates);
    LatencyStats rebuild = MeasureFirstQueryAfterUpdates(false, updates);
    std::map<std::string, std::string> labels = {
        {"updated_headers", StrFormat("%zu", updates)}};
    auto with_mode = [&labels](const char* mode) {
      std::map<std::string, std::string> l = labels;
      l["mode"] = mode;
      return l;
    };
    ctx.report().AddLatency("first_query_ms", with_mode("incremental"),
                            incremental);
    ctx.report().AddLatency("first_query_ms", with_mode("rebuild"), rebuild);
    table.AddRow({StrFormat("%zu", updates), FormatMs(incremental.median_ms),
                  FormatMs(rebuild.median_ms),
                  StrFormat("%.1fx",
                            rebuild.median_ms / incremental.median_ms)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::ApplyThreadsFlag(argc, argv);
  aggcache::BenchContext ctx(argc, argv, "ablation_main_comp");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
