// Ablation (Section 8 extension) — incremental main compensation of join
// entries via negative-delta correction joins, versus the baseline of
// rebuilding the cached entry when main-partition invalidations are
// detected.
//
// The paper leaves update handling for join aggregates as future work and
// sketches "keeping track of updates in a separate negative-delta
// partition"; this library implements that idea by restricting correction
// joins to the invalidated row sets. The bench measures the first cached
// query after a batch of updates, across batch sizes: correction cost
// scales with the number of invalidated rows, rebuild cost with the size of
// the main partitions.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kHeadersMain = 20000;
constexpr int kReps = 3;

double MeasureFirstQueryAfterUpdates(bool incremental, size_t num_updates) {
  double total = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Database db;
    ErpConfig config;
    config.num_headers_main = kHeadersMain;
    config.num_categories = 50;
    ErpDataset dataset = CheckOk(ErpDataset::Create(&db, config), "erp");
    AggregateCacheManager::Config cache_config;
    cache_config.incremental_join_main_compensation = incremental;
    AggregateCacheManager cache(&db, cache_config);
    AggregateQuery query = dataset.ProfitByCategoryQuery(2013);
    CheckOk(cache.Prewarm(query), "prewarm");

    // Update a batch of headers in the main partition (the object tid is
    // preserved, so matching dependencies keep holding).
    Rng rng(static_cast<uint64_t>(num_updates) + rep);
    Transaction txn = db.Begin();
    Table* header = dataset.header();
    for (size_t u = 0; u < num_updates; ++u) {
      int64_t id = rng.UniformInt(1, static_cast<int64_t>(kHeadersMain));
      auto loc = header->FindByPk(Value(id));
      if (!loc) continue;  // Already updated in this batch.
      int64_t year = header->ValueAt(*loc, 1).AsInt64();
      Value txn_type = header->ValueAt(*loc, 2);
      CheckOk(header->UpdateByPk(
                  txn, Value(id),
                  {Value(id),
                   Value(year == 2013 ? int64_t{2014} : int64_t{2013}),
                   txn_type}),
              "update");
    }

    Stopwatch watch;
    Transaction query_txn = db.Begin();
    CheckOk(cache.Execute(query, query_txn).status(), "execute");
    total += watch.ElapsedMillis();
  }
  return total / kReps;
}

void Run() {
  PrintBanner("Ablation: join main compensation (Section 8 extension)",
              "negative-delta correction joins vs entry rebuild after "
              "main-partition updates",
              "the paper leaves join-entry update handling as future work; "
              "corrections should cost O(invalidated rows), rebuilds O(main "
              "size)");

  ResultTable table({"updated_headers", "incremental_ms", "rebuild_ms",
                     "speedup"});
  for (size_t updates : {10u, 100u, 1000u, 5000u}) {
    double incremental = MeasureFirstQueryAfterUpdates(true, updates);
    double rebuild = MeasureFirstQueryAfterUpdates(false, updates);
    table.AddRow({StrFormat("%zu", updates), FormatMs(incremental),
                  FormatMs(rebuild),
                  StrFormat("%.1fx", rebuild / incremental)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main() {
  aggcache::bench::Run();
  return 0;
}
