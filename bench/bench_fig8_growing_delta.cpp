// Figure 8 — Join performance of the four execution strategies in a mixed
// workload with continuously growing delta partitions: business objects are
// inserted and the profit query is measured at checkpoints as the Item
// delta grows from empty.
//
// Paper result: empty-delta pruning helps only marginally over no pruning;
// full pruning outperforms both once the deltas have non-trivial sizes; the
// gap to uncached execution narrows as the delta grows.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kHeadersMain = 10000;  // ~100K items in main.
constexpr size_t kCheckpointItems = 10000;
constexpr size_t kMaxDeltaItems = 100000;

void Run() {
  PrintBanner("Figure 8",
              "join strategies while the delta grows (mixed workload)",
              "full pruning dominates at non-trivial delta sizes; "
              "empty-delta pruning only marginal");

  Database db;
  ErpConfig config;
  config.num_headers_main = kHeadersMain;
  config.num_categories = 50;
  ErpDataset dataset = CheckOk(ErpDataset::Create(&db, config), "erp");
  AggregateCacheManager cache(&db);
  AggregateQuery query = dataset.ProfitByCategoryQuery(2013);
  CheckOk(cache.Prewarm(query), "prewarm");

  std::vector<StrategySpec> strategies = JoinStrategies();
  std::vector<std::string> columns = {"item_delta_rows"};
  for (const StrategySpec& s : strategies) {
    columns.push_back(std::string(s.label) + "_ms");
  }
  ResultTable table(columns);

  Rng rng(4242);
  size_t inserted = 0;
  size_t next_checkpoint = 0;
  while (next_checkpoint <= kMaxDeltaItems) {
    while (inserted < next_checkpoint) {
      inserted += CheckOk(dataset.InsertBusinessObject(rng), "insert");
    }
    std::vector<std::string> row = {
        StrFormat("%zu", dataset.item()->group(0).delta.num_rows())};
    for (const StrategySpec& s : strategies) {
      ExecutionOptions options;
      options.strategy = s.strategy;
      double ms = MedianMs(1, [&] {
        Transaction txn = db.Begin();
        CheckOk(cache.Execute(query, txn, options).status(), "execute");
      });
      row.push_back(FormatMs(ms));
    }
    table.AddRow(std::move(row));
    next_checkpoint += kCheckpointItems;
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  size_t threads = aggcache::bench::ApplyThreadsFlag(argc, argv);
  std::printf("threads: %zu\n", threads);
  aggcache::bench::Run();
  return 0;
}
