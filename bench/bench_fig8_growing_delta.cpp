// Figure 8 — Join performance of the four execution strategies in a mixed
// workload with continuously growing delta partitions: business objects are
// inserted and the profit query is measured at checkpoints as the Item
// delta grows from empty.
//
// Paper result: empty-delta pruning helps only marginally over no pruning;
// full pruning outperforms both once the deltas have non-trivial sizes; the
// gap to uncached execution narrows as the delta grows.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kHeadersMain = 10000;  // ~100K items in main.
constexpr size_t kCheckpointItems = 10000;
constexpr size_t kMaxDeltaItems = 100000;
constexpr size_t kQuickHeadersMain = 1000;
constexpr size_t kQuickCheckpointItems = 1000;
constexpr size_t kQuickMaxDeltaItems = 5000;

void Run(BenchContext& ctx) {
  PrintBanner("Figure 8",
              "join strategies while the delta grows (mixed workload)",
              "full pruning dominates at non-trivial delta sizes; "
              "empty-delta pruning only marginal");

  Database db;
  ErpConfig config;
  config.num_headers_main = ctx.QuickOr(kQuickHeadersMain, kHeadersMain);
  config.num_categories = 50;
  ErpDataset dataset = CheckOk(ErpDataset::Create(&db, config), "erp");
  AggregateCacheManager cache(&db);
  AggregateQuery query = dataset.ProfitByCategoryQuery(2013);
  CheckOk(cache.Prewarm(query), "prewarm");

  std::vector<StrategySpec> strategies = JoinStrategies();
  std::vector<std::string> columns = {"item_delta_rows"};
  for (const StrategySpec& s : strategies) {
    columns.push_back(std::string(s.label) + "_ms");
  }
  ResultTable table(columns);

  size_t checkpoint_items =
      ctx.QuickOr(kQuickCheckpointItems, kCheckpointItems);
  size_t max_delta_items = ctx.QuickOr(kQuickMaxDeltaItems, kMaxDeltaItems);
  ctx.report().SetConfig("headers_main",
                         static_cast<int64_t>(config.num_headers_main));
  ctx.report().SetConfig("max_delta_items",
                         static_cast<int64_t>(max_delta_items));

  Rng rng(4242);
  size_t inserted = 0;
  size_t next_checkpoint = 0;
  while (next_checkpoint <= max_delta_items) {
    while (inserted < next_checkpoint) {
      inserted += CheckOk(dataset.InsertBusinessObject(rng), "insert");
    }
    std::vector<std::string> row = {
        StrFormat("%zu", dataset.item()->group(0).delta.num_rows())};
    for (const StrategySpec& s : strategies) {
      ExecutionOptions options;
      options.strategy = s.strategy;
      // One timed rep per checkpoint (the delta keeps growing, so reps are
      // not exchangeable); MeasureMs still runs the discarded warm-up rep,
      // which only re-runs the read-only query.
      LatencyStats stats = MeasureMs(ctx.Reps(1, 1), [&] {
        Transaction txn = db.Begin();
        CheckOk(cache.Execute(query, txn, options).status(), "execute");
      });
      ctx.report().AddLatency(
          "query_ms",
          {{"strategy", s.label},
           {"delta_checkpoint", StrFormat("%zu", next_checkpoint)}},
          stats);
      row.push_back(FormatMs(stats.median_ms));
    }
    table.AddRow(std::move(row));
    next_checkpoint += checkpoint_items;
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  size_t threads = aggcache::bench::ApplyThreadsFlag(argc, argv);
  std::printf("threads: %zu\n", threads);
  aggcache::BenchContext ctx(argc, argv, "fig8_growing_delta");
  ctx.report().SetConfig("threads", static_cast<int64_t>(threads));
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
