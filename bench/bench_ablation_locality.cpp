// Ablation (Section 5 analysis) — sensitivity of object-aware pruning to
// the temporal soft-constraint.
//
// The paper's dynamic pruning is always correct but only *succeeds* when
// matching tuples are inserted temporally close ("when this temporal
// constraint holds, using the proposed MDs will guarantee dynamic
// pruning"). This ablation quantifies the degradation: a fraction of items
// is inserted late (attached to already-merged headers), breaking the
// locality. Pruning of the Header_main x Item_delta subjoin fails as soon
// as a single late item exists; predicate pushdown then recovers part of
// the cost, depending on how much of the main the MD range still excludes.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kHeadersMain = 10000;
constexpr size_t kNewObjects = 500;
constexpr int kReps = 3;

void Run(BenchContext& ctx) {
  const size_t headers_main = ctx.QuickOr<size_t>(2000, kHeadersMain);
  const size_t new_objects = ctx.QuickOr<size_t>(100, kNewObjects);
  const std::vector<int> late_percents =
      ctx.quick() ? std::vector<int>{0, 5, 25}
                  : std::vector<int>{0, 1, 5, 10, 25, 50};
  ctx.report().SetConfig("headers_main", static_cast<int64_t>(headers_main));
  ctx.report().SetConfig("new_objects", static_cast<int64_t>(new_objects));
  PrintBanner("Ablation: temporal locality (Section 5)",
              "pruning and pushdown vs late-item rate",
              "pruning succeeds under temporal locality; once violated, "
              "the non-prunable subjoin costs return and pushdown recovers "
              "part of them");

  ResultTable table({"late_item_%", "pruned/considered", "full_pruning_ms",
                     "with_pushdown_ms", "no_pruning_ms"});

  for (int late_percent : late_percents) {
    Database db;
    ErpConfig config;
    config.num_headers_main = headers_main;
    config.num_categories = 50;
    ErpDataset dataset = CheckOk(ErpDataset::Create(&db, config), "erp");
    AggregateCacheManager cache(&db);
    AggregateQuery query = dataset.ProfitByCategoryQuery(2013);
    CheckOk(cache.Prewarm(query), "prewarm");

    // New business objects plus the configured share of late items.
    Rng rng(late_percent + 1);
    size_t new_items = 0;
    for (size_t i = 0; i < new_objects; ++i) {
      new_items += CheckOk(dataset.InsertBusinessObject(rng), "insert");
    }
    size_t late_items = new_items * late_percent / 100;
    CheckOk(dataset.InsertLateItems(rng, late_items), "late items");

    auto measure = [&](ExecutionStrategy strategy, bool pushdown) {
      ExecutionOptions options;
      options.strategy = strategy;
      options.use_predicate_pushdown = pushdown;
      return MeasureMs(kReps, [&] {
        Transaction txn = db.Begin();
        CheckOk(cache.Execute(query, txn, options).status(), "execute");
      });
    };

    LatencyStats full = measure(ExecutionStrategy::kCachedFullPruning, false);
    uint64_t pruned = cache.last_exec_stats().subjoins_pruned;
    uint64_t considered = pruned + cache.last_exec_stats().subjoins_executed;
    LatencyStats pushed =
        measure(ExecutionStrategy::kCachedFullPruning, true);
    LatencyStats none = measure(ExecutionStrategy::kCachedNoPruning, false);

    std::map<std::string, std::string> labels = {
        {"late_item_percent", StrFormat("%d", late_percent)}};
    auto with_mode = [&labels](const char* mode) {
      std::map<std::string, std::string> l = labels;
      l["mode"] = mode;
      return l;
    };
    ctx.report().AddLatency("query_ms", with_mode("full_pruning"), full);
    ctx.report().AddLatency("query_ms", with_mode("with_pushdown"), pushed);
    ctx.report().AddLatency("query_ms", with_mode("no_pruning"), none);
    ctx.report().AddScalar("subjoins_pruned", labels,
                           static_cast<double>(pruned));
    ctx.report().AddScalar("subjoins_considered", labels,
                           static_cast<double>(considered));

    table.AddRow({StrFormat("%d", late_percent),
                  StrFormat("%llu/%llu",
                            static_cast<unsigned long long>(pruned),
                            static_cast<unsigned long long>(considered)),
                  FormatMs(full.median_ms), FormatMs(pushed.median_ms),
                  FormatMs(none.median_ms)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::ApplyThreadsFlag(argc, argv);
  aggcache::BenchContext ctx(argc, argv, "ablation_locality");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
