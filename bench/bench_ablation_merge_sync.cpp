// Ablation (Section 5.2) — merge synchronization and pruning success.
//
// The paper argues that synchronizing the delta merges of related
// transactional tables maximizes the join-pruning success rate: merged
// together, matching tuples stay on the same side of the main/delta
// boundary; merged independently, one table's merge strands matching
// tuples across the boundary (the Fig. 5 situation) and the corresponding
// subjoin can no longer be pruned.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kInitialObjects = 10000;
constexpr size_t kPhaseObjects = 2000;
constexpr int kReps = 3;

struct Scenario {
  std::unique_ptr<Database> db;
  std::unique_ptr<ErpDataset> dataset;
};

Scenario BuildScenario(bool synchronized_merges) {
  Scenario scenario;
  scenario.db = std::make_unique<Database>();
  ErpConfig config;
  config.num_headers_main = kInitialObjects;
  config.num_categories = 50;
  scenario.dataset = std::make_unique<ErpDataset>(
      CheckOk(ErpDataset::Create(scenario.db.get(), config), "erp"));

  Rng rng(23);
  // Phase 1: new business objects arrive.
  for (size_t i = 0; i < kPhaseObjects; ++i) {
    CheckOk(scenario.dataset->InsertBusinessObject(rng).status(), "insert");
  }
  // Merge: synchronized merges move Header and Item together; independent
  // merges move only the Item table (as when per-table thresholds trigger
  // merges at different times).
  if (synchronized_merges) {
    CheckOk(scenario.db->MergeTables({"Header", "Item"}), "merge");
  } else {
    CheckOk(scenario.db->Merge("Item"), "merge item");
  }
  // Phase 2: more objects arrive after the merge.
  for (size_t i = 0; i < kPhaseObjects; ++i) {
    CheckOk(scenario.dataset->InsertBusinessObject(rng).status(), "insert");
  }
  return scenario;
}

void Run() {
  PrintBanner("Ablation: merge synchronization (Section 5.2)",
              "pruning success with synchronized vs independent merges",
              "synchronized merges of related tables maximize the pruning "
              "success rate; independent merges strand matching tuples "
              "across the main/delta boundary");

  ResultTable table({"merge_mode", "subjoins_pruned", "subjoins_total",
                     "success_rate_%", "full_pruning_ms",
                     "no_pruning_ms"});

  for (bool synchronized_merges : {true, false}) {
    Scenario scenario = BuildScenario(synchronized_merges);
    Database& db = *scenario.db;
    AggregateCacheManager cache(&db);
    AggregateQuery query = scenario.dataset->ProfitByCategoryQuery(2013);
    CheckOk(cache.Prewarm(query), "prewarm");

    ExecutionOptions full;
    full.strategy = ExecutionStrategy::kCachedFullPruning;
    double full_ms = MedianMs(kReps, [&] {
      Transaction txn = db.Begin();
      CheckOk(cache.Execute(query, txn, full).status(), "full");
    });
    uint64_t pruned = cache.last_exec_stats().subjoins_pruned;
    uint64_t total = pruned + cache.last_exec_stats().subjoins_executed;

    ExecutionOptions no_pruning;
    no_pruning.strategy = ExecutionStrategy::kCachedNoPruning;
    double no_pruning_ms = MedianMs(kReps, [&] {
      Transaction txn = db.Begin();
      CheckOk(cache.Execute(query, txn, no_pruning).status(), "np");
    });

    table.AddRow(
        {synchronized_merges ? "synchronized" : "independent",
         StrFormat("%llu", static_cast<unsigned long long>(pruned)),
         StrFormat("%llu", static_cast<unsigned long long>(total)),
         StrFormat("%.0f",
                   100.0 * static_cast<double>(pruned) /
                       static_cast<double>(total)),
         FormatMs(full_ms), FormatMs(no_pruning_ms)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main() {
  aggcache::bench::Run();
  return 0;
}
