// Ablation (Section 5.2) — merge synchronization and pruning success.
//
// The paper argues that synchronizing the delta merges of related
// transactional tables maximizes the join-pruning success rate: merged
// together, matching tuples stay on the same side of the main/delta
// boundary; merged independently, one table's merge strands matching
// tuples across the boundary (the Fig. 5 situation) and the corresponding
// subjoin can no longer be pruned.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kInitialObjects = 10000;
constexpr size_t kPhaseObjects = 2000;
constexpr int kReps = 3;
size_t g_initial_objects = kInitialObjects;
size_t g_phase_objects = kPhaseObjects;

struct Scenario {
  std::unique_ptr<Database> db;
  std::unique_ptr<ErpDataset> dataset;
};

Scenario BuildScenario(bool synchronized_merges) {
  Scenario scenario;
  scenario.db = std::make_unique<Database>();
  ErpConfig config;
  config.num_headers_main = g_initial_objects;
  config.num_categories = 50;
  scenario.dataset = std::make_unique<ErpDataset>(
      CheckOk(ErpDataset::Create(scenario.db.get(), config), "erp"));

  Rng rng(23);
  // Phase 1: new business objects arrive.
  for (size_t i = 0; i < g_phase_objects; ++i) {
    CheckOk(scenario.dataset->InsertBusinessObject(rng).status(), "insert");
  }
  // Merge: synchronized merges move Header and Item together; independent
  // merges move only the Item table (as when per-table thresholds trigger
  // merges at different times).
  if (synchronized_merges) {
    CheckOk(scenario.db->MergeTables({"Header", "Item"}), "merge");
  } else {
    CheckOk(scenario.db->Merge("Item"), "merge item");
  }
  // Phase 2: more objects arrive after the merge.
  for (size_t i = 0; i < g_phase_objects; ++i) {
    CheckOk(scenario.dataset->InsertBusinessObject(rng).status(), "insert");
  }
  return scenario;
}

void Run(BenchContext& ctx) {
  g_initial_objects = ctx.QuickOr<size_t>(1000, kInitialObjects);
  g_phase_objects = ctx.QuickOr<size_t>(200, kPhaseObjects);
  ctx.report().SetConfig("initial_objects",
                         static_cast<int64_t>(g_initial_objects));
  ctx.report().SetConfig("phase_objects",
                         static_cast<int64_t>(g_phase_objects));
  ctx.report().SetConfig("reps", static_cast<int64_t>(kReps));
  PrintBanner("Ablation: merge synchronization (Section 5.2)",
              "pruning success with synchronized vs independent merges",
              "synchronized merges of related tables maximize the pruning "
              "success rate; independent merges strand matching tuples "
              "across the main/delta boundary");

  ResultTable table({"merge_mode", "subjoins_pruned", "subjoins_total",
                     "success_rate_%", "full_pruning_ms",
                     "no_pruning_ms"});

  for (bool synchronized_merges : {true, false}) {
    Scenario scenario = BuildScenario(synchronized_merges);
    Database& db = *scenario.db;
    AggregateCacheManager cache(&db);
    AggregateQuery query = scenario.dataset->ProfitByCategoryQuery(2013);
    CheckOk(cache.Prewarm(query), "prewarm");

    ExecutionOptions full;
    full.strategy = ExecutionStrategy::kCachedFullPruning;
    LatencyStats full_stats = MeasureMs(kReps, [&] {
      Transaction txn = db.Begin();
      CheckOk(cache.Execute(query, txn, full).status(), "full");
    });
    double full_ms = full_stats.median_ms;
    uint64_t pruned = cache.last_exec_stats().subjoins_pruned;
    uint64_t total = pruned + cache.last_exec_stats().subjoins_executed;

    ExecutionOptions no_pruning;
    no_pruning.strategy = ExecutionStrategy::kCachedNoPruning;
    LatencyStats no_pruning_stats = MeasureMs(kReps, [&] {
      Transaction txn = db.Begin();
      CheckOk(cache.Execute(query, txn, no_pruning).status(), "np");
    });
    double no_pruning_ms = no_pruning_stats.median_ms;

    const char* mode = synchronized_merges ? "synchronized" : "independent";
    ctx.report().AddLatency(
        "query_ms",
        {{"merge_mode", mode}, {"strategy", "cached-full-pruning"}},
        full_stats);
    ctx.report().AddLatency(
        "query_ms",
        {{"merge_mode", mode}, {"strategy", "cached-no-pruning"}},
        no_pruning_stats);
    ctx.report().AddScalar(
        "pruning_success_rate", {{"merge_mode", mode}},
        100.0 * static_cast<double>(pruned) / static_cast<double>(total),
        "percent");

    table.AddRow(
        {synchronized_merges ? "synchronized" : "independent",
         StrFormat("%llu", static_cast<unsigned long long>(pruned)),
         StrFormat("%llu", static_cast<unsigned long long>(total)),
         StrFormat("%.0f",
                   100.0 * static_cast<double>(pruned) /
                       static_cast<double>(total)),
         FormatMs(full_ms), FormatMs(no_pruning_ms)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::ApplyThreadsFlag(argc, argv);
  aggcache::BenchContext ctx(argc, argv, "ablation_merge_sync");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
