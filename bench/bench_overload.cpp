// Open-loop overload benchmark (DESIGN.md §9): offered load is paced at 4x
// the admission-capped service rate, so the engine cannot serve everything
// and must shed. The governance stack under test:
//
//   - AdmissionController caps concurrent queries and bounds the queue, so
//     excess arrivals are rejected after a short wait instead of piling up;
//   - every served query runs under a QueryContext deadline, so a query
//     that got admitted but then starves aborts at its next check point;
//   - the process MemoryTracker carries a limit the whole run must respect.
//
// The assertions encode what "graceful" means: admitted queries keep a
// bounded p95 (<= 3x the unloaded median — shed load must not poison the
// latency of what is served), peak tracked memory stays within the limit,
// no query ends in anything but success or a typed governance abort, and
// the usual metric invariants (hits + misses == lookups, zero per-query
// bytes tracked at exit) hold after the storm.
//
// Exit code is non-zero on any violated bound — this is a perf gate as much
// as a benchmark.

#include "bench/harness.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace aggcache {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  ApplyThreadsFlag(argc, argv);
  BenchContext ctx(argc, argv, "overload");
  PrintBanner("Overload", "open-loop serving at 4x the admitted service rate",
              "object-aware caching keeps serving cheap; governance keeps it "
              "bounded when demand is not");

  Database db;
  ErpConfig config;
  config.num_headers_main = ctx.QuickOr<size_t>(200, 400);
  config.avg_items_per_header = 3;
  config.num_categories = 12;
  config.seed = 42;
  ErpDataset dataset =
      CheckOk(ErpDataset::Create(&db, config), "dataset creation");
  AggregateCacheManager cache(&db);

  std::vector<AggregateQuery> queries;
  queries.push_back(dataset.ItemTotalsByCategoryQuery());
  queries.push_back(dataset.RevenueByYearQuery());
  queries.push_back(dataset.ProfitByCategoryQuery(2013));
  for (const AggregateQuery& query : queries) {
    CheckOk(cache.Prewarm(query), "prewarm");
  }
  // Leave a real delta behind the cached entries, including late items
  // that break temporal locality: with pruning defeated, per-arrival work
  // is genuine delta⋈main compensation rather than a bare hash lookup,
  // which keeps the unloaded median well above scheduler noise — the
  // regime the deadline/timeout ratios below are tuned for.
  {
    Rng rng(config.seed);
    size_t burst = ctx.QuickOr<size_t>(400, 800);
    for (size_t i = 0; i < burst; ++i) {
      CheckOk(dataset.InsertBusinessObject(rng).status(), "delta insert");
      CheckOk(dataset.InsertLateItems(rng, 2), "late items");
    }
  }

  // Unloaded baseline: each query alone, no governance, pool untouched.
  ExecutionOptions options;
  options.strategy = ExecutionStrategy::kCachedFullPruning;
  std::vector<double> unloaded_medians;
  for (size_t q = 0; q < queries.size(); ++q) {
    LatencyStats stats = MeasureMs(ctx.Reps(3, 7), [&] {
      Transaction txn = db.Begin();
      CheckOk(cache.Execute(queries[q], txn, options), "unloaded execute");
    });
    ctx.report().AddLatency("unloaded_ms", {{"query", StrFormat("q%zu", q)}},
                            stats);
    unloaded_medians.push_back(stats.median_ms);
  }
  std::sort(unloaded_medians.begin(), unloaded_medians.end());
  const double unloaded_median =
      unloaded_medians[unloaded_medians.size() / 2];

  // Governance derived from the measured baseline so the bounds scale with
  // the host: an admitted query spends at most ~0.5x median queued plus
  // ~1.5x median executing — comfortably inside the 3x gate.
  const size_t kCap = 2;
  const double deadline_ms = 1.5 * unloaded_median;
  AdmissionController::Config admission;
  admission.max_concurrent = kCap;
  admission.max_queue = 16;
  admission.queue_timeout_ms = 0.5 * unloaded_median;
  AdmissionController::Global().Configure(admission);
  const size_t mem_limit = size_t{256} << 20;
  MemoryTracker::Process().set_limit(mem_limit);
  MemoryTracker::Process().ResetHighWater();

  // Open loop: kCap slots each serve ~one query per unloaded median, so
  // saturation is kCap/median; arrivals are paced at 4x that, on a fixed
  // schedule that does not slow down when the engine falls behind.
  const double offered_qps = 4.0 * kCap * 1000.0 / unloaded_median;
  const double interval_secs = 1.0 / offered_qps;
  const double duration_secs = ctx.QuickOr(2.0, 6.0);
  // Arrival cap: on a host where the cached path is so fast the 4x rate
  // would mean millions of arrivals, keep the schedule (same rate, same
  // pressure) but bound the run by count instead of wall clock.
  const size_t total_arrivals = std::min<size_t>(
      static_cast<size_t>(duration_secs / interval_secs), 20000);
  const size_t workers = ctx.QuickOr<size_t>(5, 6);

  std::printf(
      "unloaded median %.3f ms; offering %.0f q/s (4x saturation) for "
      "%.1f s: %zu arrivals, cap=%zu, deadline=%.3f ms\n",
      unloaded_median, offered_qps, duration_secs, total_arrivals, kCap,
      deadline_ms);

  std::atomic<size_t> next_arrival{0};
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> sheds_resource{0};
  std::atomic<uint64_t> sheds_deadline{0};
  std::atomic<uint64_t> hard_errors{0};
  std::mutex latency_mu;
  std::vector<double> admitted_ms;
  const auto start = std::chrono::steady_clock::now();
  auto worker = [&] {
    std::vector<double> local_ms;
    for (;;) {
      size_t i = next_arrival.fetch_add(1, std::memory_order_relaxed);
      if (i >= total_arrivals) break;
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(i) * interval_secs)));
      const AggregateQuery& query = queries[i % queries.size()];
      Stopwatch watch;
      QueryContext::Options governed;
      governed.deadline_ms = deadline_ms;
      QueryContext context(governed);
      ScopedQueryContext scope(&context);
      Transaction txn = db.Begin();
      auto result = cache.Execute(query, txn, options);
      if (result.ok()) {
        local_ms.push_back(watch.ElapsedMillis());
        admitted.fetch_add(1, std::memory_order_relaxed);
      } else if (result.status().code() == StatusCode::kResourceExhausted) {
        sheds_resource.fetch_add(1, std::memory_order_relaxed);
      } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
        sheds_deadline.fetch_add(1, std::memory_order_relaxed);
      } else {
        hard_errors.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "ERROR: %s\n",
                     result.status().ToString().c_str());
      }
    }
    std::lock_guard<std::mutex> lock(latency_mu);
    admitted_ms.insert(admitted_ms.end(), local_ms.begin(), local_ms.end());
  };
  std::vector<std::thread> threads;
  for (size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  const double elapsed_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const uint64_t served = admitted.load();
  const uint64_t shed =
      sheds_resource.load() + sheds_deadline.load();
  LatencyStats admitted_stats;
  if (!admitted_ms.empty()) {
    admitted_stats = SummarizeLatencies(std::move(admitted_ms));
  }
  const size_t peak = MemoryTracker::Process().high_water();

  ResultTable table({"metric", "value"});
  table.AddRow({"offered arrivals", StrFormat("%zu", total_arrivals)});
  table.AddRow({"admitted (served)", StrFormat("%llu",
      static_cast<unsigned long long>(served))});
  table.AddRow({"shed (resource)", StrFormat("%llu",
      static_cast<unsigned long long>(sheds_resource.load()))});
  table.AddRow({"shed (deadline)", StrFormat("%llu",
      static_cast<unsigned long long>(sheds_deadline.load()))});
  table.AddRow({"hard errors", StrFormat("%llu",
      static_cast<unsigned long long>(hard_errors.load()))});
  table.AddRow({"unloaded median", FormatMs(unloaded_median) + " ms"});
  table.AddRow({"admitted p95", FormatMs(admitted_stats.p95_ms) + " ms"});
  table.AddRow({"peak tracked", StrFormat("%.1f MB",
      static_cast<double>(peak) / (1 << 20))});
  table.Print();

  ctx.report().SetConfig("cap", static_cast<int64_t>(kCap));
  ctx.report().SetConfig("workers", static_cast<int64_t>(workers));
  ctx.report().SetConfig("overload_factor", 4.0);
  ctx.report().AddScalar("offered_arrivals", {},
                         static_cast<double>(total_arrivals));
  ctx.report().AddScalar("admitted", {}, static_cast<double>(served));
  ctx.report().AddScalar("shed", {}, static_cast<double>(shed));
  ctx.report().AddScalar("shed_fraction", {},
                         total_arrivals == 0
                             ? 0.0
                             : static_cast<double>(shed) / total_arrivals);
  ctx.report().AddScalar(
      "served_per_sec", {},
      elapsed_secs > 0 ? static_cast<double>(served) / elapsed_secs : 0.0,
      "1/s");
  ctx.report().AddScalar("hard_errors", {},
                         static_cast<double>(hard_errors.load()));
  ctx.report().AddScalar("peak_tracked_bytes", {},
                         static_cast<double>(peak), "bytes");
  ctx.report().AddScalar(
      "p95_over_unloaded_median", {},
      unloaded_median > 0 ? admitted_stats.p95_ms / unloaded_median : 0.0,
      "x");
  if (admitted_stats.reps > 0) {
    ctx.report().AddLatency("admitted_ms", {}, admitted_stats);
  }

  // The gates. Every violation prints and fails the run.
  bool failed = false;
  if (served == 0) {
    std::fprintf(stderr, "GATE: no query was admitted under overload\n");
    failed = true;
  }
  if (admitted_stats.p95_ms > 3.0 * unloaded_median) {
    std::fprintf(stderr,
                 "GATE: admitted p95 %.3f ms exceeds 3x unloaded median "
                 "(%.3f ms)\n",
                 admitted_stats.p95_ms, unloaded_median);
    failed = true;
  }
  if (peak > mem_limit) {
    std::fprintf(stderr, "GATE: peak tracked %zu bytes exceeds limit %zu\n",
                 peak, mem_limit);
    failed = true;
  }
  if (hard_errors.load() != 0) {
    std::fprintf(stderr, "GATE: %llu hard errors (non-governance)\n",
                 static_cast<unsigned long long>(hard_errors.load()));
    failed = true;
  }
  const EngineMetrics& em = EngineMetrics::Get();
  if (em.cache_hits->Value() + em.cache_misses->Value() !=
      em.cache_lookups->Value()) {
    std::fprintf(stderr, "GATE: hits + misses != lookups\n");
    failed = true;
  }
  if (MemoryTracker::Queries().used() != 0) {
    std::fprintf(stderr,
                 "GATE: %zu query-reserved bytes still tracked at exit\n",
                 MemoryTracker::Queries().used());
    failed = true;
  }

  // Idle again: hand the process-wide knobs back in their default state.
  AdmissionController::Global().Configure(AdmissionController::Config());
  MemoryTracker::Process().set_limit(0);

  std::printf("%s\n", failed ? "FAIL" : "PASS");
  if (!ctx.Finish()) return 1;
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) { return aggcache::bench::Run(argc, argv); }
