// Figure 6 — Mixed workload performance of the aggregate cache vs classical
// materialized-view maintenance strategies across insert ratios 0..100%.
//
// Paper result: eager and lazy incremental maintenance degrade as the
// insert ratio grows (the view must be maintained for every delta change),
// while the aggregate cache stays nearly flat because it is defined on main
// partitions only; beyond roughly a 15% insert ratio the aggregate cache
// wins. No delta merge runs during the workload, matching the paper.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kHeadersMain = 2000;
// Keep the op count moderate so the delta stays small relative to the
// aggregate, the regime of the paper's experiment (insert rates "bear upon
// an individual materialized aggregate").
constexpr size_t kOperations = 1000;
constexpr size_t kQuickHeadersMain = 500;
constexpr size_t kQuickOperations = 200;
// Moderate grouping cardinality: per-query result handling stays cheap
// relative to the simulated statement overhead, as in a statement-stack-
// dominated production system.
constexpr size_t kCategories = 50;

void Run(BenchContext& ctx) {
  PrintBanner("Figure 6", "maintenance strategies under a mixed workload",
              "aggregate cache superior above ~15% insert ratio; eager/lazy "
              "grow with insert share, cache stays nearly constant");

  ResultTable table({"insert_ratio_%", "eager_norm", "lazy_norm",
                     "aggcache_norm", "eager_ms", "lazy_ms", "aggcache_ms"});

  std::vector<MaintenanceStrategy> strategies = {
      MaintenanceStrategy::kEagerIncremental,
      MaintenanceStrategy::kLazyIncremental,
      MaintenanceStrategy::kAggregateCache};

  // total_ms[ratio][strategy]
  std::vector<std::vector<double>> totals;
  std::vector<int> ratios;
  int step = ctx.quick() ? 25 : 10;
  for (int ratio = 0; ratio <= 100; ratio += step) ratios.push_back(ratio);
  size_t headers_main = ctx.QuickOr(kQuickHeadersMain, kHeadersMain);
  size_t operations = ctx.QuickOr(kQuickOperations, kOperations);
  ctx.report().SetConfig("headers_main", static_cast<int64_t>(headers_main));
  ctx.report().SetConfig("operations", static_cast<int64_t>(operations));
  ctx.report().SetConfig("categories", static_cast<int64_t>(kCategories));

  double max_total = 0.0;
  for (int ratio : ratios) {
    std::vector<double> row;
    for (MaintenanceStrategy strategy : strategies) {
      // Fresh database per cell so every run starts from the same merged
      // main and an empty delta.
      Database db;
      ErpConfig config;
      config.num_headers_main = headers_main;
      config.num_categories = kCategories;
      ErpDataset dataset = CheckOk(ErpDataset::Create(&db, config), "erp");
      AggregateCacheManager cache(&db);
      AggregateQuery query = dataset.ItemTotalsByCategoryQuery();

      MixedWorkloadConfig workload;
      workload.num_operations = operations;
      workload.insert_ratio = ratio / 100.0;
      workload.seed = 17;
      // Simulated SQL statement-stack cost (see MixedWorkloadConfig): a
      // production DBMS pays this per statement; classical maintenance
      // issues one extra statement per affected summary row.
      workload.statement_overhead_us = 50.0;
      // Single-table insert workload: items attached to existing headers.
      ErpDataset* ds = &dataset;
      auto insert_item = [ds](Rng& rng) -> Status {
        return ds->InsertLateItems(rng, 1);
      };
      MixedWorkloadResult result = CheckOk(
          RunMixedWorkload(&db, query, strategy, &cache, workload,
                           insert_item),
          "workload");
      row.push_back(result.total_ms);
      max_total = std::max(max_total, result.total_ms);
      ctx.report().AddScalar(
          "workload_total_ms",
          {{"insert_ratio", StrFormat("%d", ratio)},
           {"strategy", MaintenanceStrategyToString(strategy)}},
          result.total_ms, "ms");
    }
    totals.push_back(row);
  }

  for (size_t i = 0; i < ratios.size(); ++i) {
    table.AddRow({StrFormat("%d", ratios[i]),
                  FormatNorm(totals[i][0] / max_total),
                  FormatNorm(totals[i][1] / max_total),
                  FormatNorm(totals[i][2] / max_total),
                  FormatMs(totals[i][0]), FormatMs(totals[i][1]),
                  FormatMs(totals[i][2])});
  }
  table.Print();

  // Report the crossover: smallest ratio from which the cache matches or
  // beats both classical strategies (5% tolerance absorbs timer noise and
  // the degenerate 100%-insert case where lazy maintenance never runs) at
  // every higher ratio as well.
  int crossover = -1;
  for (size_t i = ratios.size(); i-- > 0;) {
    if (totals[i][2] < 1.05 * totals[i][0] &&
        totals[i][2] < 1.05 * totals[i][1]) {
      crossover = ratios[i];
    } else {
      break;
    }
  }
  ctx.report().AddScalar("crossover_insert_ratio", {},
                         static_cast<double>(crossover), "percent");
  if (crossover >= 0) {
    std::printf("\naggregate cache beats eager+lazy from insert ratio %d%% "
                "onward (paper: ~15%%)\n",
                crossover);
  } else {
    std::printf("\nno crossover observed at this scale\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::ApplyThreadsFlag(argc, argv);
  aggcache::BenchContext ctx(argc, argv, "fig6_maintenance");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
