// Ablation (Section 2.3 analysis) — compensation cost vs join width.
//
// The paper derives that a t-table join needs 2^t subjoins without the
// cache and 2^t - 1 for delta compensation with it; this bench measures how
// the measured subjoin counts and execution times grow with t on a chain of
// header -> item -> subitem -> detail tables, and how object-aware pruning
// collapses the compensation set to a near-constant.

#include "bench/harness.h"

namespace aggcache {
namespace bench {
namespace {

constexpr size_t kChainLength = 4;
constexpr size_t kRootRows = 5000;
constexpr size_t kQuickRootRows = 500;
constexpr int kReps = 3;
size_t g_root_rows = kRootRows;

// Creates a chain T1 <- T2 <- ... <- Tn where each level references the
// previous one with an MD tid column, loads data (fan-out 3 per level),
// merges, then adds fresh business objects into the deltas.
struct Chain {
  std::unique_ptr<Database> db;
  std::vector<Table*> tables;
  std::vector<AggregateQuery> queries;  // queries[t-1] joins first t tables.
};

Chain BuildChain() {
  Chain chain;
  chain.db = std::make_unique<Database>();
  Database& db = *chain.db;
  for (size_t level = 0; level < kChainLength; ++level) {
    std::string name = StrFormat("T%zu", level + 1);
    SchemaBuilder builder(name);
    builder.AddColumn("id", ColumnType::kInt64).PrimaryKey();
    if (level > 0) {
      builder.AddColumn("parent_id", ColumnType::kInt64)
          .References(StrFormat("T%zu", level),
                      StrFormat("tid_T%zu", level));
    }
    builder.AddColumn("v", ColumnType::kInt64);
    builder.OwnTid(StrFormat("tid_T%zu", level + 1));
    chain.tables.push_back(CheckOk(db.CreateTable(builder.Build()),
                                   "create"));
  }

  // Load: one transaction per root business object spanning all levels.
  auto load = [&](size_t num_roots, int64_t id_offset) {
    Rng rng(id_offset + 1);
    std::vector<int64_t> next_id(kChainLength, id_offset + 1);
    for (size_t root = 0; root < num_roots; ++root) {
      Transaction txn = db.Begin();
      std::vector<std::vector<int64_t>> level_ids(kChainLength);
      int64_t root_id = next_id[0]++;
      CheckOk(chain.tables[0]->Insert(
                  txn, {Value(root_id), Value(rng.UniformInt(0, 99))}),
              "root insert");
      level_ids[0].push_back(root_id);
      for (size_t level = 1; level < kChainLength; ++level) {
        for (int64_t parent : level_ids[level - 1]) {
          // Fan-out shrinks with depth to keep sizes manageable.
          int fanout = level == 1 ? 3 : 2;
          for (int c = 0; c < fanout; ++c) {
            int64_t id = next_id[level]++;
            CheckOk(chain.tables[level]->Insert(
                        txn, {Value(id), Value(parent),
                              Value(rng.UniformInt(0, 99))}),
                    "child insert");
            level_ids[level].push_back(id);
          }
        }
      }
    }
  };
  load(g_root_rows, 0);
  CheckOk(db.MergeAll(), "merge");
  load(g_root_rows / 20, 10000000);  // 5% into the deltas.

  for (size_t t = 1; t <= kChainLength; ++t) {
    QueryBuilder builder;
    builder.From("T1");
    for (size_t level = 2; level <= t; ++level) {
      builder.Join(StrFormat("T%zu", level), "id", "parent_id");
    }
    builder.GroupBy("T1", "v");
    builder.Sum(StrFormat("T%zu", t), "v", "total");
    chain.queries.push_back(builder.Build());
  }
  return chain;
}

void Run(BenchContext& ctx) {
  g_root_rows = ctx.QuickOr(kQuickRootRows, kRootRows);
  ctx.report().SetConfig("root_rows", static_cast<int64_t>(g_root_rows));
  ctx.report().SetConfig("chain_length",
                         static_cast<int64_t>(kChainLength));
  ctx.report().SetConfig("reps", static_cast<int64_t>(kReps));
  PrintBanner("Ablation: subjoin explosion (Section 2.3)",
              "compensation subjoins vs join width t",
              "2^t subjoins uncached, 2^t - 1 with cache; pruning collapses "
              "the compensation set");

  Chain chain = BuildChain();
  AggregateCacheManager cache(chain.db.get());

  ResultTable table({"t_tables", "uncached_subjoins", "uncached_ms",
                     "comp_subjoins_no_pruning", "no_pruning_ms",
                     "comp_subjoins_full", "full_pruning_ms"});

  for (size_t t = 1; t <= kChainLength; ++t) {
    const AggregateQuery& query = chain.queries[t - 1];
    CheckOk(cache.Prewarm(query), "prewarm");

    ExecutionOptions uncached;
    uncached.strategy = ExecutionStrategy::kUncached;
    LatencyStats uncached_stats = MeasureMs(kReps, [&] {
      Transaction txn = chain.db->Begin();
      CheckOk(cache.Execute(query, txn, uncached).status(), "uncached");
    });
    double uncached_ms = uncached_stats.median_ms;
    uint64_t uncached_subjoins = cache.last_exec_stats().subjoins_executed;

    ExecutionOptions no_pruning;
    no_pruning.strategy = ExecutionStrategy::kCachedNoPruning;
    LatencyStats no_pruning_stats = MeasureMs(kReps, [&] {
      Transaction txn = chain.db->Begin();
      CheckOk(cache.Execute(query, txn, no_pruning).status(), "np");
    });
    double no_pruning_ms = no_pruning_stats.median_ms;
    uint64_t np_subjoins = cache.last_exec_stats().subjoins_executed;

    ExecutionOptions full;
    full.strategy = ExecutionStrategy::kCachedFullPruning;
    LatencyStats full_stats = MeasureMs(kReps, [&] {
      Transaction txn = chain.db->Begin();
      CheckOk(cache.Execute(query, txn, full).status(), "full");
    });
    double full_ms = full_stats.median_ms;
    uint64_t full_subjoins = cache.last_exec_stats().subjoins_executed;

    std::map<std::string, std::string> t_label = {
        {"t_tables", StrFormat("%zu", t)}};
    auto with_strategy = [&t_label](const char* strategy) {
      std::map<std::string, std::string> l = t_label;
      l["strategy"] = strategy;
      return l;
    };
    ctx.report().AddLatency("query_ms", with_strategy("uncached"),
                            uncached_stats);
    ctx.report().AddLatency("query_ms", with_strategy("cached-no-pruning"),
                            no_pruning_stats);
    ctx.report().AddLatency("query_ms", with_strategy("cached-full-pruning"),
                            full_stats);
    ctx.report().AddScalar("subjoins_executed",
                           with_strategy("cached-full-pruning"),
                           static_cast<double>(full_subjoins));

    table.AddRow({StrFormat("%zu", t), StrFormat("%llu",
                      static_cast<unsigned long long>(uncached_subjoins)),
                  FormatMs(uncached_ms),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(np_subjoins)),
                  FormatMs(no_pruning_ms),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(full_subjoins)),
                  FormatMs(full_ms)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  aggcache::bench::ApplyThreadsFlag(argc, argv);
  aggcache::BenchContext ctx(argc, argv, "ablation_subjoins");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
