// Parallel subjoin scaling — delta compensation and uncached execution of
// multi-table CH-benCH-style queries at 1/2/4/8 threads.
//
// The compensation subjoins of a t-table join (up to 2^t - 1 combinations
// without pruning) are independent, so they fan out across the worker pool
// and merge deterministically in enumeration order. This bench reports the
// speedup over the 1-thread configuration (which is bit-identical to the
// sequential engine: a serial pool runs the plain loop) and verifies that
// every thread count produces the exact same result.
//
// Real speedup requires real cores; the hardware_concurrency line makes it
// obvious when the host cannot show one.

#include "bench/harness.h"

#include <thread>

namespace aggcache {
namespace bench {
namespace {

constexpr int kReps = 5;

void Run(BenchContext& ctx) {
  PrintBanner("Parallel scaling", "subjoin fan-out at 1/2/4/8 threads",
              "compensation cost is the price of serving from the cache; "
              "parallel subjoins drive it down");
  std::printf("hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  Database db;
  ChBenchConfig config;
  config.num_warehouses = 2;
  config.num_items = ctx.QuickOr<size_t>(500, 2000);
  config.districts_per_warehouse = ctx.QuickOr<size_t>(4, 10);
  config.customers_per_district = ctx.QuickOr<size_t>(10, 30);
  config.orders_per_customer = ctx.QuickOr<size_t>(5, 10);
  config.avg_orderlines_per_order = 10;
  ctx.report().SetConfig("num_items", static_cast<int64_t>(config.num_items));
  ctx.report().SetConfig(
      "hardware_concurrency",
      static_cast<int64_t>(std::thread::hardware_concurrency()));
  ChBenchDataset dataset =
      CheckOk(ChBenchDataset::Create(&db, config), "chbench");
  AggregateCacheManager cache(&db);

  const std::vector<size_t> thread_counts =
      ctx.quick() ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  // cached-no-pruning executes every compensation subjoin (the worst-case
  // fan-out the paper's pruning attacks); uncached unions all 2^t combos.
  ExecutionOptions delta_options;
  delta_options.strategy = ExecutionStrategy::kCachedNoPruning;
  ExecutionOptions uncached_options;
  uncached_options.strategy = ExecutionStrategy::kUncached;

  ResultTable table({"query", "tables", "threads", "delta_comp_ms",
                     "uncached_ms", "delta_speedup", "uncached_speedup",
                     "identical"});
  for (auto& [number, query] : dataset.AllQueries()) {
    CheckOk(cache.Prewarm(query), "prewarm");
    double delta_base = 0.0;
    double uncached_base = 0.0;
    AggregateResult cached_reference;
    AggregateResult uncached_reference;
    for (size_t threads : thread_counts) {
      ThreadPool::SetGlobalParallelism(threads);
      AggregateResult cached_result;
      LatencyStats delta_stats = MeasureMs(kReps, [&] {
        Transaction txn = db.Begin();
        cached_result = CheckOk(cache.Execute(query, txn, delta_options),
                                "cached execute");
      });
      double delta_ms = delta_stats.median_ms;
      AggregateResult uncached_result;
      LatencyStats uncached_stats = MeasureMs(kReps, [&] {
        Transaction txn = db.Begin();
        uncached_result = CheckOk(cache.Execute(query, txn, uncached_options),
                                  "uncached execute");
      });
      double uncached_ms = uncached_stats.median_ms;
      std::map<std::string, std::string> labels = {
          {"query", StrFormat("Q%d", number)},
          {"threads", StrFormat("%zu", threads)}};
      auto with_mode = [&labels](const char* mode) {
        std::map<std::string, std::string> l = labels;
        l["mode"] = mode;
        return l;
      };
      ctx.report().AddLatency("query_ms", with_mode("delta_comp"),
                              delta_stats);
      ctx.report().AddLatency("query_ms", with_mode("uncached"),
                              uncached_stats);
      bool identical = true;
      if (threads == thread_counts.front()) {
        delta_base = delta_ms;
        uncached_base = uncached_ms;
        cached_reference = cached_result;
        uncached_reference = uncached_result;
      } else {
        // Exact comparison (tolerance 0) per strategy: enumeration-order
        // merging makes every thread count reproduce the 1-thread (i.e.
        // sequential) result bit for bit.
        identical = cached_result.ApproxEquals(cached_reference, 0.0) &&
                    uncached_result.ApproxEquals(uncached_reference, 0.0);
      }
      table.AddRow({StrFormat("Q%d", number),
                    StrFormat("%zu", query.tables.size()),
                    StrFormat("%zu", threads), FormatMs(delta_ms),
                    FormatMs(uncached_ms),
                    StrFormat("%.2fx", delta_base / delta_ms),
                    StrFormat("%.2fx", uncached_base / uncached_ms),
                    identical ? "yes" : "NO"});
      if (threads != thread_counts.front()) {
        ctx.report().AddScalar("delta_speedup", labels,
                               delta_base / delta_ms, "x");
      }
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: results diverge at %zu threads for Q%d\n",
                     threads, number);
        std::abort();
      }
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace aggcache

int main(int argc, char** argv) {
  // --threads=N restricts the sweep's pool ceiling implicitly by being
  // applied first; the sweep below still sets each configuration explicitly.
  aggcache::bench::ApplyThreadsFlag(argc, argv);
  aggcache::BenchContext ctx(argc, argv, "parallel_scaling");
  aggcache::bench::Run(ctx);
  return ctx.Finish() ? 0 : 1;
}
