// Multi-threaded execution tests: the subjoin fan-outs must produce results
// identical to sequential execution at any pool size, and the pool itself
// must tolerate concurrent top-level callers. Run under
// -DAGGCACHE_SANITIZE=thread to validate the threading model.

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

using testing_util::ExpectAllStrategiesAgree;

class ParallelExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    for (int64_t h = 1; h <= 20; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2010 + h % 5, 3, 2.5 * h,
          &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
    // Delta rows on both tables so compensation has real subjoins to run.
    for (int64_t h = 21; h <= 26; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2010 + h % 5, 2, 1.5 * h,
          &next_item_id_));
    }
  }

  void TearDown() override { ThreadPool::SetGlobalParallelism(1); }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1;
  AggregateQuery query_ = testing_util::HeaderItemQuery();
};

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(
      touched.size(), [&](size_t i) { touched[i].fetch_add(1); }, pool);
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::thread::id caller = std::this_thread::get_id();
  ParallelFor(
      8, [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      pool);
}

TEST(ThreadPoolTest, TaskGroupWaitsForAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.Run([&done] { done.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 64);
}

TEST_F(ParallelExecutionTest, ResultsIdenticalToSequentialPerStrategy) {
  // Reference results computed with the serial pool — the exact sequential
  // engine.
  ThreadPool::SetGlobalParallelism(1);
  AggregateCacheManager sequential_cache(&db_);
  std::vector<ExecutionStrategy> strategies = {
      ExecutionStrategy::kUncached, ExecutionStrategy::kCachedNoPruning,
      ExecutionStrategy::kCachedEmptyDeltaPruning,
      ExecutionStrategy::kCachedFullPruning};
  std::vector<AggregateResult> reference;
  for (ExecutionStrategy strategy : strategies) {
    ExecutionOptions options;
    options.strategy = strategy;
    Transaction txn = db_.Begin();
    auto result = sequential_cache.Execute(query_, txn, options);
    ASSERT_TRUE(result.ok()) << result.status();
    reference.push_back(std::move(result).value());
  }

  ThreadPool::SetGlobalParallelism(4);
  AggregateCacheManager parallel_cache(&db_);
  for (size_t s = 0; s < strategies.size(); ++s) {
    ExecutionOptions options;
    options.strategy = strategies[s];
    Transaction txn = db_.Begin();
    auto result = parallel_cache.Execute(query_, txn, options);
    ASSERT_TRUE(result.ok()) << result.status();
    // Tolerance 0: enumeration-order merging makes the parallel result bit
    // for bit equal to the sequential one.
    std::string diff;
    EXPECT_TRUE(result->ApproxEquals(reference[s], 0.0, &diff))
        << "strategy " << static_cast<int>(strategies[s]) << ": " << diff;
  }
}

TEST_F(ParallelExecutionTest, MixedWorkloadStressAtFourThreads) {
  ThreadPool::SetGlobalParallelism(4);
  AggregateCacheManager cache(&db_);
  AggregateQuery single_table = QueryBuilder()
                                    .From("Item")
                                    .GroupBy("Item", "HeaderID")
                                    .Sum("Item", "Amount", "total")
                                    .CountStar("n")
                                    .Build();
  // Interleave mutations, merges, and queries across every strategy; each
  // round cross-checks all strategies (including uncached) against each
  // other through the shared helper.
  for (int round = 0; round < 4; ++round) {
    int64_t h = 100 + round;
    ASSERT_OK(testing_util::InsertBusinessObject(
        &db_, header_, item_, h, 2012 + round, 2, 4.0 + round,
        &next_item_id_));
    ExpectAllStrategiesAgree(&db_, &cache, query_);
    ExpectAllStrategiesAgree(&db_, &cache, single_table);
    Transaction txn = db_.Begin();
    ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{1 + round})));
    ExpectAllStrategiesAgree(&db_, &cache, query_);
    if (round % 2 == 1) {
      ASSERT_OK(db_.MergeTables({"Header", "Item"}));
      ExpectAllStrategiesAgree(&db_, &cache, query_);
      ExpectAllStrategiesAgree(&db_, &cache, single_table);
    }
  }
}

TEST_F(ParallelExecutionTest, HotColdSplitRebuildsUnderParallelPool) {
  ThreadPool::SetGlobalParallelism(4);
  AggregateCacheManager cache(&db_);
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache.Execute(query_, warm).ok());
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  ASSERT_OK(header_->SplitHotCold("HeaderID", Value(int64_t{10})));
  ASSERT_OK(item_->SplitHotCold("HeaderID", Value(int64_t{10})));
  db_.RegisterAgingGroup({"Header", "Item"});
  // More partition groups -> more all-main combinations in the rebuild
  // fan-out and more compensation subjoins per query.
  ExpectAllStrategiesAgree(&db_, &cache, query_);
}

TEST_F(ParallelExecutionTest, ConcurrentExecutorsProduceIdenticalResults) {
  // Top-level concurrency: four threads, each with its own Executor (an
  // instance's shared counters are not synchronized), all fanning subjoins
  // into the same global pool against one immutable snapshot.
  ThreadPool::SetGlobalParallelism(4);
  Snapshot snapshot = db_.Begin().snapshot();
  Executor reference_exec(&db_);
  auto reference = reference_exec.ExecuteUncached(query_, snapshot);
  ASSERT_TRUE(reference.ok()) << reference.status();

  constexpr int kThreads = 4;
  constexpr int kRepsPerThread = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Executor executor(&db_);
      for (int r = 0; r < kRepsPerThread; ++r) {
        auto result = executor.ExecuteUncached(query_, snapshot);
        if (!result.ok() || !result->ApproxEquals(*reference, 0.0)) {
          mismatches.fetch_add(1);
        }
      }
      (void)t;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace aggcache
