#include "query/vector_kernels.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "storage/database.h"
#include "storage/dictionary.h"
#include "storage/partition.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

using testing_util::CreateHeaderItemTables;
using testing_util::InsertBusinessObject;

// ---------------------------------------------------------------------------
// PackedKeyLayout

TEST(PackedKeyLayoutTest, TwoFullWidthFieldsFitExactly) {
  std::vector<int> bits = {32, 32};
  auto layout = PlanPackedKeyLayout(bits);
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->total_bits, 64);
  ASSERT_EQ(layout->fields.size(), 2u);
  EXPECT_EQ(layout->fields[0].shift, 0);
  EXPECT_EQ(layout->fields[1].shift, 32);

  // Round-trip at the extremes of both fields.
  std::vector<ValueId> codes = {0xFFFFFFFFu, 0xFFFFFFFEu};
  uint64_t key = layout->Pack(codes);
  EXPECT_EQ(layout->Unpack(key, 0), 0xFFFFFFFFu);
  EXPECT_EQ(layout->Unpack(key, 1), 0xFFFFFFFEu);
}

TEST(PackedKeyLayoutTest, OneBitPastTheBoundaryFallsBack) {
  std::vector<int> bits = {32, 32, 1};
  EXPECT_FALSE(PlanPackedKeyLayout(bits).has_value());
}

TEST(PackedKeyLayoutTest, EmptyLayoutPacksToZero) {
  std::vector<int> bits;
  auto layout = PlanPackedKeyLayout(bits);
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->total_bits, 0);
  EXPECT_EQ(layout->Pack({}), 0u);
}

TEST(PackedKeyLayoutTest, MixedWidthsRoundTrip) {
  std::vector<int> bits = {7, 13, 32, 12};
  auto layout = PlanPackedKeyLayout(bits);
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->total_bits, 64);
  std::vector<ValueId> codes = {100, 8000, 0x89ABCDEFu, 4095};
  uint64_t key = layout->Pack(codes);
  for (size_t f = 0; f < codes.size(); ++f) {
    EXPECT_EQ(layout->Unpack(key, f), codes[f]) << "field " << f;
  }
}

// ---------------------------------------------------------------------------
// CodeHashTable

TEST(CodeHashTableTest, EmptyBuildSideFindsNothing) {
  CodeHashTable table(0);
  size_t calls = 0;
  table.ForEach(42, [&](uint32_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(CodeHashTableTest, DuplicateKeysPreserveInsertionOrder) {
  CodeHashTable table(4);
  table.Insert(5, 100);
  table.Insert(7, 200);
  table.Insert(5, 101);
  table.Insert(5, 102);
  std::vector<uint32_t> got;
  table.ForEach(5, [&](uint32_t p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<uint32_t>{100, 101, 102}));
  got.clear();
  table.ForEach(7, [&](uint32_t p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<uint32_t>{200}));
  got.clear();
  table.ForEach(6, [&](uint32_t p) { got.push_back(p); });
  EXPECT_TRUE(got.empty());
}

TEST(CodeHashTableTest, ManyDistinctKeysAllRetrievable) {
  constexpr size_t kKeys = 5000;
  CodeHashTable table(kKeys);
  for (size_t k = 0; k < kKeys; ++k) {
    table.Insert(k * 1024, static_cast<uint32_t>(k));
  }
  for (size_t k = 0; k < kKeys; ++k) {
    std::vector<uint32_t> got;
    table.ForEach(k * 1024, [&](uint32_t p) { got.push_back(p); });
    ASSERT_EQ(got.size(), 1u) << "key " << k;
    EXPECT_EQ(got[0], k);
  }
}

// ---------------------------------------------------------------------------
// GroupIndexMap

TEST(GroupIndexMapTest, AssignsDenseIndexesInFirstSeenOrder) {
  GroupIndexMap map;
  EXPECT_EQ(map.InsertOrGet(900), 0u);
  EXPECT_EQ(map.InsertOrGet(100), 1u);
  EXPECT_EQ(map.InsertOrGet(900), 0u);
  EXPECT_EQ(map.InsertOrGet(500), 2u);
  EXPECT_EQ(map.size(), 3u);
}

TEST(GroupIndexMapTest, GrowsPastInitialCapacity) {
  GroupIndexMap map(4);
  constexpr uint64_t kGroups = 1000;
  for (uint64_t g = 0; g < kGroups; ++g) {
    ASSERT_EQ(map.InsertOrGet(g * 7919), g);
  }
  for (uint64_t g = 0; g < kGroups; ++g) {
    ASSERT_EQ(map.InsertOrGet(g * 7919), g);
  }
  EXPECT_EQ(map.size(), kGroups);
}

// ---------------------------------------------------------------------------
// CodeTranslator

TEST(CodeTranslatorTest, TranslatesBetweenDeltaAndSortedMainDictionaries) {
  // Delta dictionary in arrival order: 30 -> 0, 10 -> 1, 20 -> 2.
  Dictionary delta(ColumnType::kInt64, Dictionary::Mode::kUnsortedDelta);
  ASSERT_OK(delta.GetOrAdd(Value(int64_t{30})).status());
  ASSERT_OK(delta.GetOrAdd(Value(int64_t{10})).status());
  ASSERT_OK(delta.GetOrAdd(Value(int64_t{20})).status());
  // Sorted main dictionary: 10 -> 0, 20 -> 1, 40 -> 2. 30 is absent.
  Dictionary main = Dictionary::BuildSorted(
      ColumnType::kInt64,
      {Value(int64_t{40}), Value(int64_t{10}), Value(int64_t{20})});

  CodeTranslator to_main(&delta, &main);
  EXPECT_EQ(to_main.Translate(0), CodeTranslator::kNoMatch);  // 30 absent.
  EXPECT_EQ(to_main.Translate(1), 0u);                        // 10.
  EXPECT_EQ(to_main.Translate(2), 1u);                        // 20.
  // Memo hit: same answer on repeat.
  EXPECT_EQ(to_main.Translate(0), CodeTranslator::kNoMatch);

  CodeTranslator to_delta(&main, &delta);
  EXPECT_EQ(to_delta.Translate(0), 1u);                       // 10.
  EXPECT_EQ(to_delta.Translate(1), 2u);                       // 20.
  EXPECT_EQ(to_delta.Translate(2), CodeTranslator::kNoMatch); // 40 absent.

  // The unmemoized path (tiny probe volume against a large dictionary)
  // must agree with the memoized one.
  CodeTranslator direct(&delta, &main, /*expected_lookups=*/0);
  EXPECT_EQ(direct.Translate(0), CodeTranslator::kNoMatch);
  EXPECT_EQ(direct.Translate(1), 0u);
  EXPECT_EQ(direct.Translate(2), 1u);
}

TEST(CodeTranslatorTest, VariantEqualityNeverCrossMatchesTypes) {
  // Joins use Value variant equality: int64(5) != double(5.0). The
  // translator must preserve that — a numeric-equality translation would
  // silently change join results.
  Dictionary ints(ColumnType::kInt64, Dictionary::Mode::kUnsortedDelta);
  ASSERT_OK(ints.GetOrAdd(Value(int64_t{5})).status());
  Dictionary doubles(ColumnType::kDouble, Dictionary::Mode::kUnsortedDelta);
  ASSERT_OK(doubles.GetOrAdd(Value(5.0)).status());

  CodeTranslator translator(&ints, &doubles);
  EXPECT_EQ(translator.Translate(0), CodeTranslator::kNoMatch);
}

// ---------------------------------------------------------------------------
// Selection kernels vs row-at-a-time evaluation

class SelectionKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateHeaderItemTables(&db_, &header_, &item_);
    // 2500 headers across 5 years; merge the first 1500 into main, keep the
    // rest in the delta, and invalidate a sprinkling of rows in both.
    for (int64_t h = 1; h <= 1500; ++h) {
      Transaction txn = db_.Begin();
      ASSERT_OK(header_->Insert(txn, {Value(h), Value(2010 + h % 5)}));
    }
    ASSERT_OK(db_.Merge("Header"));
    for (int64_t h = 1501; h <= 2500; ++h) {
      Transaction txn = db_.Begin();
      ASSERT_OK(header_->Insert(txn, {Value(h), Value(2010 + h % 5)}));
    }
    for (int64_t h = 3; h <= 2500; h += 97) {
      Transaction txn = db_.Begin();
      ASSERT_OK(header_->DeleteByPk(txn, Value(h)));
    }
    snapshot_ = db_.txn_manager().GlobalSnapshot();
  }

  // Row-at-a-time reference: visibility plus all (op, operand) filters.
  std::vector<uint32_t> BruteForce(
      const Partition& p,
      const std::vector<std::pair<CompareOp, Value>>& filters,
      size_t column) {
    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < p.num_rows(); ++r) {
      if (!snapshot_.RowVisible(p.create_tid(r), p.invalidate_tid(r))) {
        continue;
      }
      bool pass = true;
      for (const auto& [op, operand] : filters) {
        if (!EvalCompare(op, p.column(column).GetValue(r), operand)) {
          pass = false;
          break;
        }
      }
      if (pass) rows.push_back(r);
    }
    return rows;
  }

  void ExpectKernelMatchesBruteForce(
      const Partition& p,
      const std::vector<std::pair<CompareOp, Value>>& filters,
      size_t column) {
    std::vector<CompiledColumnFilter> compiled(filters.size());
    for (size_t i = 0; i < filters.size(); ++i) {
      ASSERT_TRUE(CompileColumnFilter(p.column(column), filters[i].first,
                                      filters[i].second, &compiled[i]));
    }
    SelectionInput input;
    input.snapshot = &snapshot_;
    input.filters = compiled;
    std::vector<uint32_t> got;
    size_t batches = SelectRowsRange(
        p, input, 0, static_cast<uint32_t>(p.num_rows()), &got);
    EXPECT_EQ(batches, (p.num_rows() + kSelectionBlockRows - 1) /
                           kSelectionBlockRows);
    EXPECT_EQ(got, BruteForce(p, filters, column));
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  Snapshot snapshot_;
};

TEST_F(SelectionKernelTest, RangeFilterOnSortedMainMatchesBruteForce) {
  const Partition& main = header_->group(0).main;
  ASSERT_GT(main.num_rows(), 0u);
  ExpectKernelMatchesBruteForce(
      main, {{CompareOp::kLe, Value(int64_t{2012})}}, /*column=*/1);
  ExpectKernelMatchesBruteForce(
      main, {{CompareOp::kEq, Value(int64_t{2013})}}, /*column=*/1);
  ExpectKernelMatchesBruteForce(
      main, {{CompareOp::kNe, Value(int64_t{2011})}}, /*column=*/1);
}

TEST_F(SelectionKernelTest, FiltersOnUnsortedDeltaMatchBruteForce) {
  const Partition& delta = header_->group(0).delta;
  ASSERT_GT(delta.num_rows(), 0u);
  // Equality compiles to a single-code comparison on delta dictionaries;
  // ranges fall back to value comparison.
  ExpectKernelMatchesBruteForce(
      delta, {{CompareOp::kEq, Value(int64_t{2014})}}, /*column=*/1);
  ExpectKernelMatchesBruteForce(
      delta, {{CompareOp::kGt, Value(int64_t{2012})}}, /*column=*/1);
  // Conjunction exercises the sparse (post-first-filter) block path.
  ExpectKernelMatchesBruteForce(delta,
                                {{CompareOp::kGe, Value(int64_t{2011})},
                                 {CompareOp::kLt, Value(int64_t{2014})}},
                                /*column=*/1);
}

TEST_F(SelectionKernelTest, NoVisibilityCheckKeepsInvalidatedRows) {
  const Partition& delta = header_->group(0).delta;
  SelectionInput input;
  input.snapshot = &snapshot_;
  input.check_visibility = false;
  std::vector<uint32_t> got;
  SelectRowsRange(delta, input, 0, static_cast<uint32_t>(delta.num_rows()),
                  &got);
  // Every row comes back, including the deleted ones.
  EXPECT_EQ(got.size(), delta.num_rows());
}

TEST_F(SelectionKernelTest, EqualityWithAbsentValueRefusesToCompile) {
  const Partition& main = header_->group(0).main;
  CompiledColumnFilter f;
  EXPECT_FALSE(CompileColumnFilter(main.column(1), CompareOp::kEq,
                                   Value(int64_t{1999}), &f));
}

TEST_F(SelectionKernelTest, GatherMatchesRangeOnCandidateSubset) {
  const Partition& main = header_->group(0).main;
  std::vector<uint32_t> candidates;
  for (uint32_t r = 1; r < main.num_rows(); r += 3) candidates.push_back(r);

  Value operand(int64_t{2012});
  CompiledColumnFilter f;
  ASSERT_TRUE(CompileColumnFilter(main.column(1), CompareOp::kGe, operand,
                                  &f));
  SelectionInput input;
  input.snapshot = &snapshot_;
  input.filters = std::span<const CompiledColumnFilter>(&f, 1);

  std::vector<uint32_t> got;
  SelectRowsGather(main, input, candidates, &got);

  std::vector<uint32_t> expected;
  for (uint32_t r : candidates) {
    if (snapshot_.RowVisible(main.create_tid(r), main.invalidate_tid(r)) &&
        EvalCompare(CompareOp::kGe, main.column(1).GetValue(r), operand)) {
      expected.push_back(r);
    }
  }
  EXPECT_EQ(got, expected);
}

// ---------------------------------------------------------------------------
// Executor-level behavior of the batched pipeline

TEST(VectorExecutorTest, EmptyBuildSideYieldsEmptyResult) {
  Database db;
  ASSERT_OK(db.CreateTable(SchemaBuilder("A")
                               .AddColumn("aid", ColumnType::kInt64)
                               .PrimaryKey()
                               .AddColumn("k", ColumnType::kInt64)
                               .Build())
                .status());
  ASSERT_OK(db.CreateTable(SchemaBuilder("B")
                               .AddColumn("bid", ColumnType::kInt64)
                               .PrimaryKey()
                               .AddColumn("k", ColumnType::kInt64)
                               .Build())
                .status());
  Table* a = db.GetTable("A").value();
  Table* b = db.GetTable("B").value();
  {
    Transaction txn = db.Begin();
    ASSERT_OK(a->Insert(txn, {Value(int64_t{1}), Value(int64_t{7})}));
    ASSERT_OK(a->Insert(txn, {Value(int64_t{2}), Value(int64_t{8})}));
  }
  AggregateQuery query = QueryBuilder()
                             .From("A")
                             .Join("B", "k", "k")
                             .GroupBy("A", "k")
                             .CountStar("n")
                             .Build();
  Executor executor(&db);
  // B has no rows at all: one join side selects nothing.
  auto result =
      executor.ExecuteUncached(query, db.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->empty());

  // B non-empty but with keys absent from A's dictionary: the probe-side
  // code translation yields no match for every tuple.
  {
    Transaction txn = db.Begin();
    ASSERT_OK(b->Insert(txn, {Value(int64_t{1}), Value(int64_t{99})}));
    ASSERT_OK(b->Insert(txn, {Value(int64_t{2}), Value(int64_t{98})}));
  }
  result =
      executor.ExecuteUncached(query, db.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->empty());
}

TEST(VectorExecutorTest, DuplicateKeysOnBothSidesCrossProduct) {
  Database db;
  ASSERT_OK(db.CreateTable(SchemaBuilder("A")
                               .AddColumn("aid", ColumnType::kInt64)
                               .PrimaryKey()
                               .AddColumn("k", ColumnType::kInt64)
                               .Build())
                .status());
  ASSERT_OK(db.CreateTable(SchemaBuilder("B")
                               .AddColumn("bid", ColumnType::kInt64)
                               .PrimaryKey()
                               .AddColumn("k", ColumnType::kInt64)
                               .Build())
                .status());
  Table* a = db.GetTable("A").value();
  Table* b = db.GetTable("B").value();
  {
    Transaction txn = db.Begin();
    // A: k=1 twice, k=2 once. B: k=1 three times, k=2 twice.
    ASSERT_OK(a->Insert(txn, {Value(int64_t{1}), Value(int64_t{1})}));
    ASSERT_OK(a->Insert(txn, {Value(int64_t{2}), Value(int64_t{1})}));
    ASSERT_OK(a->Insert(txn, {Value(int64_t{3}), Value(int64_t{2})}));
    ASSERT_OK(b->Insert(txn, {Value(int64_t{1}), Value(int64_t{1})}));
    ASSERT_OK(b->Insert(txn, {Value(int64_t{2}), Value(int64_t{1})}));
    ASSERT_OK(b->Insert(txn, {Value(int64_t{3}), Value(int64_t{1})}));
    ASSERT_OK(b->Insert(txn, {Value(int64_t{4}), Value(int64_t{2})}));
    ASSERT_OK(b->Insert(txn, {Value(int64_t{5}), Value(int64_t{2})}));
  }
  AggregateQuery query = QueryBuilder()
                             .From("A")
                             .Join("B", "k", "k")
                             .GroupBy("A", "k")
                             .CountStar("n")
                             .Build();
  Executor executor(&db);
  auto result =
      executor.ExecuteUncached(query, db.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(result.ok()) << result.status();
  auto rows = result->Rows({AggregateFunction::kCountStar});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<Value>{Value(int64_t{1}),
                                         Value(int64_t{6})}));  // 2 x 3.
  EXPECT_EQ(rows[1], (std::vector<Value>{Value(int64_t{2}),
                                         Value(int64_t{2})}));  // 1 x 2.
}

TEST(VectorExecutorTest, MultiConditionResidualJoin) {
  Database db;
  ASSERT_OK(db.CreateTable(SchemaBuilder("Header")
                               .AddColumn("HeaderID", ColumnType::kInt64)
                               .PrimaryKey()
                               .AddColumn("FiscalYear", ColumnType::kInt64)
                               .Build())
                .status());
  ASSERT_OK(db.CreateTable(SchemaBuilder("Item")
                               .AddColumn("ItemID", ColumnType::kInt64)
                               .PrimaryKey()
                               .AddColumn("HeaderID", ColumnType::kInt64)
                               .AddColumn("Year", ColumnType::kInt64)
                               .AddColumn("Amount", ColumnType::kDouble)
                               .Build())
                .status());
  Table* header = db.GetTable("Header").value();
  Table* item = db.GetTable("Item").value();
  {
    Transaction txn = db.Begin();
    ASSERT_OK(header->Insert(txn, {Value(int64_t{1}), Value(int64_t{2013})}));
    ASSERT_OK(header->Insert(txn, {Value(int64_t{2}), Value(int64_t{2014})}));
    // Item 1 matches header 1 on both conditions; item 2 matches the key
    // but not the year (residual kills it); item 3 matches header 2.
    ASSERT_OK(item->Insert(txn, {Value(int64_t{1}), Value(int64_t{1}),
                                 Value(int64_t{2013}), Value(10.0)}));
    ASSERT_OK(item->Insert(txn, {Value(int64_t{2}), Value(int64_t{1}),
                                 Value(int64_t{2014}), Value(20.0)}));
    ASSERT_OK(item->Insert(txn, {Value(int64_t{3}), Value(int64_t{2}),
                                 Value(int64_t{2014}), Value(30.0)}));
  }
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .Join("Item", "HeaderID", "HeaderID")
                             .GroupBy("Header", "FiscalYear")
                             .Sum("Item", "Amount", "Revenue")
                             .Build();
  // Second condition between the same tables: Header.FiscalYear =
  // Item.Year. It rides as a residual check on the driving hash join.
  query.joins.push_back(JoinCondition{0, "FiscalYear", 1, "Year"});

  Executor executor(&db);
  auto result =
      executor.ExecuteUncached(query, db.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(result.ok()) << result.status();
  auto rows = result->Rows({AggregateFunction::kSum});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(int64_t{2013}));
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 10.0);
  EXPECT_EQ(rows[1][0], Value(int64_t{2014}));
  EXPECT_DOUBLE_EQ(rows[1][1].AsDouble(), 30.0);
}

TEST(VectorExecutorTest, ResultsUnchangedAcrossMainDeltaCodeSpaces) {
  Database db;
  Table* header = nullptr;
  Table* item = nullptr;
  CreateHeaderItemTables(&db, &header, &item);
  int64_t next_item = 1;
  for (int64_t h = 1; h <= 50; ++h) {
    ASSERT_OK(InsertBusinessObject(&db, header, item, h,
                                   h % 2 == 0 ? 2013 : 2014, 4, 2.5,
                                   &next_item));
  }
  Executor executor(&db);
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto all_delta = executor.ExecuteUncached(
      query, db.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(all_delta.ok()) << all_delta.status();

  // Merge only Header: joins now translate between a sorted main
  // dictionary and Item's unsorted delta dictionary.
  ASSERT_OK(db.Merge("Header"));
  auto mixed = executor.ExecuteUncached(
      query, db.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  std::string diff;
  EXPECT_TRUE(mixed->ApproxEquals(*all_delta, 1e-9, &diff)) << diff;

  // Merge Item as well: both sides sorted-main code spaces.
  ASSERT_OK(db.Merge("Item"));
  auto both_main = executor.ExecuteUncached(
      query, db.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(both_main.ok()) << both_main.status();
  EXPECT_TRUE(both_main->ApproxEquals(*all_delta, 1e-9, &diff)) << diff;
}

TEST(VectorExecutorTest, BatchedPipelineCountersAdvance) {
  Database db;
  Table* header = nullptr;
  Table* item = nullptr;
  CreateHeaderItemTables(&db, &header, &item);
  int64_t next_item = 1;
  for (int64_t h = 1; h <= 20; ++h) {
    ASSERT_OK(InsertBusinessObject(&db, header, item, h, 2013, 3, 1.0,
                                   &next_item));
  }
  Executor executor(&db);
  auto result = executor.ExecuteUncached(
      testing_util::HeaderItemQuery(), db.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(result.ok()) << result.status();
  ExecutorStats stats = executor.stats().Snapshot();
  EXPECT_GT(stats.selection_batches, 0u);
  EXPECT_GT(stats.code_joins, 0u);
  EXPECT_GT(stats.packed_groupings, 0u);
  EXPECT_EQ(stats.fallback_groupings, 0u);
}

}  // namespace
}  // namespace aggcache
