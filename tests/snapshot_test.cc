#include "storage/snapshot.h"

#include <sstream>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
  }

  std::string Dump() {
    std::ostringstream out;
    Status status = WriteSnapshot(db_, out);
    AGGCACHE_CHECK(status.ok()) << status.ToString();
    return out.str();
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1;
};

TEST_F(SnapshotTest, EmptyDatabaseRoundTrips) {
  std::string snapshot = Dump();
  Database restored;
  std::istringstream in(snapshot);
  ASSERT_OK(ReadSnapshot(in, &restored));
  EXPECT_EQ(restored.TableNames(), db_.TableNames());
  EXPECT_EQ(restored.txn_manager().last_committed(), 0u);
}

TEST_F(SnapshotTest, DataAndTidsRoundTrip) {
  for (int64_t h = 1; h <= 5; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(
        &db_, header_, item_, h, 2010 + h % 3, 2, 7.25, &next_item_id_));
  }
  ASSERT_OK(db_.Merge("Header"));  // Mixed state: Header main, Item delta.

  Database restored;
  std::istringstream in(Dump());
  ASSERT_OK(ReadSnapshot(in, &restored));

  Table* restored_header = restored.GetTable("Header").value();
  Table* restored_item = restored.GetTable("Item").value();
  EXPECT_EQ(restored_header->group(0).main.num_rows(), 5u);
  EXPECT_TRUE(restored_header->group(0).delta.empty());
  EXPECT_EQ(restored_item->group(0).delta.num_rows(), 10u);

  // Create tids are preserved exactly (the basis of tid-range pruning).
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(restored_header->group(0).main.create_tid(r),
              header_->group(0).main.create_tid(r));
  }
  // The transaction counter continues after the snapshot.
  EXPECT_EQ(restored.txn_manager().last_committed(),
            db_.txn_manager().last_committed());

  // Query results agree.
  Executor original_exec(&db_);
  Executor restored_exec(&restored);
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto a = original_exec.ExecuteUncached(
      query, db_.txn_manager().GlobalSnapshot());
  auto b = restored_exec.ExecuteUncached(
      query, restored.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(a.ok() && b.ok());
  std::string diff;
  EXPECT_TRUE(a->ApproxEquals(*b, 1e-12, &diff)) << diff;
}

TEST_F(SnapshotTest, InvalidationsAndHistoryRoundTrip) {
  for (int64_t h = 1; h <= 4; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(
        &db_, header_, item_, h, 2013, 1, 1.0, &next_item_id_));
  }
  MergeOptions keep;
  keep.keep_invalidated = true;
  ASSERT_OK(db_.MergeTables({"Header", "Item"}, keep));
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{2})));
  ASSERT_OK(db_.MergeTables({"Header", "Item"}, keep));

  Database restored;
  std::istringstream in(Dump());
  ASSERT_OK(ReadSnapshot(in, &restored));
  Table* restored_header = restored.GetTable("Header").value();
  // The invalidated row version is preserved in main.
  EXPECT_EQ(restored_header->group(0).main.num_rows(), 4u);
  EXPECT_EQ(restored_header->MainInvalidationCount(), 1u);
  Snapshot now = restored.txn_manager().GlobalSnapshot();
  EXPECT_EQ(restored_header->VisibleRows(now), 3u);
  // Temporal query: the old snapshot still sees the deleted row.
  EXPECT_EQ(restored_header->VisibleRows(Snapshot{txn.tid() - 1}), 4u);
  // The pk index excludes the deleted row.
  EXPECT_FALSE(restored_header->FindByPk(Value(int64_t{2})).has_value());
}

TEST_F(SnapshotTest, HotColdLayoutAndAgingGroupsRoundTrip) {
  for (int64_t h = 1; h <= 8; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(
        &db_, header_, item_, h, 2013, 1, 1.0, &next_item_id_));
  }
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  ASSERT_OK(header_->SplitHotCold("HeaderID", Value(int64_t{5})));
  ASSERT_OK(item_->SplitHotCold("HeaderID", Value(int64_t{5})));
  db_.RegisterAgingGroup({"Header", "Item"});

  Database restored;
  std::istringstream in(Dump());
  ASSERT_OK(ReadSnapshot(in, &restored));
  Table* restored_header = restored.GetTable("Header").value();
  ASSERT_EQ(restored_header->num_groups(), 2u);
  EXPECT_EQ(restored_header->group(0).age, AgeClass::kHot);
  EXPECT_EQ(restored_header->group(1).age, AgeClass::kCold);
  EXPECT_EQ(restored_header->group(1).main.num_rows(), 4u);
  EXPECT_TRUE(restored.InSameAgingGroup("Header", "Item"));
}

TEST_F(SnapshotTest, StringsWithSpecialCharactersRoundTrip) {
  Database db;
  auto table = db.CreateTable(SchemaBuilder("Notes")
                                  .AddColumn("id", ColumnType::kInt64)
                                  .PrimaryKey()
                                  .AddColumn("text", ColumnType::kString)
                                  .Build());
  ASSERT_TRUE(table.ok());
  Transaction txn = db.Begin();
  std::string tricky = "line1\nline2 \"quoted\" back\\slash\r";
  ASSERT_OK((*table)->Insert(txn, {Value(int64_t{1}), Value(tricky)}));
  ASSERT_OK((*table)->Insert(txn, {Value(int64_t{2}), Value("")}));

  std::ostringstream out;
  ASSERT_OK(WriteSnapshot(db, out));
  Database restored;
  std::istringstream in(out.str());
  ASSERT_OK(ReadSnapshot(in, &restored));
  Table* restored_table = restored.GetTable("Notes").value();
  auto loc = restored_table->FindByPk(Value(int64_t{1}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(restored_table->ValueAt(*loc, 1), Value(tricky));
  loc = restored_table->FindByPk(Value(int64_t{2}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(restored_table->ValueAt(*loc, 1), Value(""));
}

TEST_F(SnapshotTest, MatchingDependenciesSurviveRestore) {
  for (int64_t h = 1; h <= 3; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(
        &db_, header_, item_, h, 2013, 2, 1.0, &next_item_id_));
  }
  Database restored;
  std::istringstream in(Dump());
  ASSERT_OK(ReadSnapshot(in, &restored));
  auto holds = VerifyMdHolds(restored, "Header", "Item");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
  // And the restored database keeps enforcing them for new inserts.
  Transaction txn = restored.Begin();
  Table* restored_item = restored.GetTable("Item").value();
  ASSERT_OK(restored_item->Insert(
      txn, {Value(int64_t{999}), Value(int64_t{1}), Value(2.0)}));
  holds = VerifyMdHolds(restored, "Header", "Item");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
}

TEST_F(SnapshotTest, RestoreRequiresEmptyDatabase) {
  std::string snapshot = Dump();
  std::istringstream in(snapshot);
  // db_ already has tables.
  EXPECT_EQ(ReadSnapshot(in, &db_).code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotTest, CorruptSnapshotsRejectedWithLineNumbers) {
  Database restored;
  std::istringstream bad_magic("NOT_A_SNAPSHOT\n");
  EXPECT_FALSE(ReadSnapshot(bad_magic, &restored).ok());

  std::string snapshot = Dump();
  // Truncate mid-way.
  std::istringstream truncated(snapshot.substr(0, snapshot.size() / 2));
  Database restored2;
  auto status = ReadSnapshot(truncated, &restored2);
  EXPECT_FALSE(status.ok());

  // Corrupt a row line.
  std::string corrupted = snapshot;
  size_t pos = corrupted.find("end_table");
  ASSERT_NE(pos, std::string::npos);
  corrupted.insert(pos, "row garbage\n");
  std::istringstream bad_row(corrupted);
  Database restored3;
  EXPECT_FALSE(ReadSnapshot(bad_row, &restored3).ok());
}

}  // namespace
}  // namespace aggcache
