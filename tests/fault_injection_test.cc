// Mark-for-rebuild under injected maintenance failures: a cache entry whose
// merge-time maintenance fails must degrade to a rebuild on next access —
// never crash, never serve a stale hit — and the rebuilding Execute must
// report entry_rebuilt with main_exec_ms populated.

#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "verify/fault_injector.h"

namespace aggcache {
namespace {

using testing_util::CreateHeaderItemTables;
using testing_util::HeaderItemQuery;
using testing_util::InsertBusinessObject;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateHeaderItemTables(&db_, &header_, &item_);
    for (int64_t h = 1; h <= 4; ++h) {
      ASSERT_OK(InsertBusinessObject(&db_, header_, item_, h, 2014 + h % 2,
                                     /*num_items=*/2, /*amount=*/7.25 * h,
                                     &next_item_id_));
    }
  }

  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().ResetCounters();
  }

  // Warms the cache for the canonical header/item query and returns its
  // entry.
  const CacheEntry* WarmEntry(AggregateCacheManager* cache) {
    const AggregateQuery query = HeaderItemQuery();
    Transaction txn = db_.Begin();
    auto result = cache->Execute(query, txn, ExecutionOptions());
    EXPECT_TRUE(result.ok()) << result.status();
    const CacheEntry* entry = cache->Find(query);
    EXPECT_NE(entry, nullptr);
    return entry;
  }

  // Asserts that a fresh cached execution agrees with uncached execution,
  // was NOT served from the (stale) cached partials, and rebuilt the entry
  // with timing recorded.
  void ExpectRebuildWithCorrectResult(AggregateCacheManager* cache) {
    const AggregateQuery query = HeaderItemQuery();
    Transaction txn = db_.Begin();
    ExecutionOptions uncached;
    uncached.strategy = ExecutionStrategy::kUncached;
    auto baseline = cache->Execute(query, txn, uncached);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    auto cached = cache->Execute(query, txn, ExecutionOptions());
    ASSERT_TRUE(cached.ok()) << cached.status();
    const CacheExecStats& stats = cache->last_exec_stats();
    EXPECT_FALSE(stats.cache_hit);
    EXPECT_TRUE(stats.entry_rebuilt);
    EXPECT_GT(stats.main_exec_ms, 0.0);

    std::string diff;
    EXPECT_TRUE(cached->ApproxEquals(*baseline, 1e-9, &diff)) << diff;
    const CacheEntry* entry = cache->Find(query);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->needs_rebuild());
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1;
};

TEST_F(FaultInjectionTest, FailedBindDuringMergeMarksForRebuild) {
  AggregateCacheManager cache(&db_);
  const CacheEntry* entry = WarmEntry(&cache);
  ASSERT_FALSE(entry->needs_rebuild());

  FaultInjector::Global().Arm("maintenance.bind", {/*probability=*/1.0});
  ASSERT_OK(db_.MergeAll());  // Merge succeeds; entry maintenance does not.
  EXPECT_TRUE(entry->needs_rebuild());
  FaultInjector::Global().DisarmAll();

  ASSERT_OK(InsertBusinessObject(&db_, header_, item_, 5, 2015, 2, 99.0,
                                 &next_item_id_));
  ExpectRebuildWithCorrectResult(&cache);
}

TEST_F(FaultInjectionTest, FailedDeltaFoldMarksForRebuild) {
  AggregateCacheManager cache(&db_);
  const CacheEntry* entry = WarmEntry(&cache);

  // New rows in the deltas give the merge-time fold real work to fail at.
  ASSERT_OK(InsertBusinessObject(&db_, header_, item_, 5, 2014, 3, 12.5,
                                 &next_item_id_));
  FaultInjector::Global().Arm("maintenance.fold", {/*probability=*/1.0});
  ASSERT_OK(db_.MergeAll());
  EXPECT_TRUE(entry->needs_rebuild());
  EXPECT_GT(FaultInjector::Global().stats("maintenance.fold").fired, 0u);
  FaultInjector::Global().DisarmAll();

  ExpectRebuildWithCorrectResult(&cache);
}

TEST_F(FaultInjectionTest, AbortedMergeMarksForRebuild) {
  AggregateCacheManager cache(&db_);
  const CacheEntry* entry = WarmEntry(&cache);

  // storage.merge fires after OnBeforeMerge folded the delta forward but
  // before the merge itself: the surviving delta would be double-counted by
  // the entry, so the abort notification must degrade it to a rebuild.
  ASSERT_OK(InsertBusinessObject(&db_, header_, item_, 5, 2015, 2, 31.0,
                                 &next_item_id_));
  FaultInjector::Global().Arm("storage.merge", {/*probability=*/1.0});
  Status merge = db_.MergeAll();
  ASSERT_FALSE(merge.ok());
  EXPECT_TRUE(FaultInjector::IsInjectedFault(merge)) << merge.ToString();
  EXPECT_TRUE(entry->needs_rebuild());
  FaultInjector::Global().DisarmAll();

  ExpectRebuildWithCorrectResult(&cache);
}

TEST_F(FaultInjectionTest, EvictionFaultDropsEntriesWithoutWrongResults) {
  AggregateCacheManager cache(&db_);
  WarmEntry(&cache);
  EXPECT_EQ(cache.num_entries(), 1u);

  // Simulated memory pressure on the next admission: everything evictable
  // is dropped, only the entry being admitted survives.
  FaultInjector::Global().Arm("cache.evict_all", {/*probability=*/1.0});
  AggregateQuery other = QueryBuilder()
                             .From("Item")
                             .GroupBy("Item", "HeaderID")
                             .Sum("Item", "Amount", "Total")
                             .Build();
  Transaction txn = db_.Begin();
  auto result = cache.Execute(other, txn, ExecutionOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_NE(cache.Find(other), nullptr);
  EXPECT_EQ(cache.Find(HeaderItemQuery()), nullptr);
  EXPECT_EQ(cache.total_bytes(), cache.RecomputeTotalBytes());
  FaultInjector::Global().DisarmAll();

  // The evicted query re-enters the cache as a fresh, correct entry.
  testing_util::ExpectAllStrategiesAgree(&db_, &cache, HeaderItemQuery());
  EXPECT_NE(cache.Find(HeaderItemQuery()), nullptr);
}

}  // namespace
}  // namespace aggcache
