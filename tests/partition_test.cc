#include "storage/partition.h"

#include "gtest/gtest.h"
#include "storage/schema.h"

namespace aggcache {
namespace {

TableSchema TwoColumnSchema() {
  return SchemaBuilder("T")
      .AddColumn("id", ColumnType::kInt64)
      .PrimaryKey()
      .AddColumn("name", ColumnType::kString)
      .Build();
}

TEST(PartitionTest, DeltaAppendRows) {
  Partition delta = Partition::MakeDelta(TwoColumnSchema());
  EXPECT_EQ(delta.kind(), PartitionKind::kDelta);
  EXPECT_TRUE(delta.empty());
  ASSERT_TRUE(delta.AppendRow({Value(int64_t{1}), Value("a")}, 10).ok());
  ASSERT_TRUE(delta.AppendRow({Value(int64_t{2}), Value("b")}, 11).ok());
  EXPECT_EQ(delta.num_rows(), 2u);
  EXPECT_EQ(delta.create_tid(0), 10u);
  EXPECT_EQ(delta.create_tid(1), 11u);
  EXPECT_EQ(delta.GetRow(1), (std::vector<Value>{Value(int64_t{2}),
                                                 Value("b")}));
}

TEST(PartitionTest, AppendRejectsBadRows) {
  Partition delta = Partition::MakeDelta(TwoColumnSchema());
  // Wrong arity.
  EXPECT_FALSE(delta.AppendRow({Value(int64_t{1})}, 1).ok());
  // Wrong type.
  EXPECT_FALSE(delta.AppendRow({Value("x"), Value("a")}, 1).ok());
  // NULL.
  EXPECT_FALSE(delta.AppendRow({Value(int64_t{1}), Value()}, 1).ok());
  // A failed append must not half-mutate the partition.
  EXPECT_EQ(delta.num_rows(), 0u);
  EXPECT_EQ(delta.column(0).size(), 0u);
  EXPECT_EQ(delta.column(1).size(), 0u);
}

TEST(PartitionTest, InvalidationTracking) {
  Partition delta = Partition::MakeDelta(TwoColumnSchema());
  ASSERT_TRUE(delta.AppendRow({Value(int64_t{1}), Value("a")}, 5).ok());
  EXPECT_FALSE(delta.RowInvalidated(0));
  EXPECT_EQ(delta.invalidation_count(), 0u);
  delta.InvalidateRow(0, 9);
  EXPECT_TRUE(delta.RowInvalidated(0));
  EXPECT_EQ(delta.invalidate_tid(0), 9u);
  EXPECT_EQ(delta.invalidation_count(), 1u);
}

TEST(PartitionTest, MakeMainCarriesMvccState) {
  std::vector<Column> columns;
  columns.push_back(Column::MakeMain(
      Dictionary::BuildSorted(ColumnType::kInt64,
                              {Value(int64_t{1}), Value(int64_t{2})}),
      {0, 1}));
  Partition main = Partition::MakeMain(std::move(columns), {3, 4},
                                       {kNoTid, 6});
  EXPECT_EQ(main.kind(), PartitionKind::kMain);
  EXPECT_EQ(main.num_rows(), 2u);
  EXPECT_EQ(main.invalidation_count(), 1u);
  EXPECT_FALSE(main.RowInvalidated(0));
  EXPECT_TRUE(main.RowInvalidated(1));
  // Appending to a main partition is rejected.
  EXPECT_FALSE(main.AppendRow({Value(int64_t{9})}, 1).ok());
}

TEST(PartitionTest, KindNames) {
  EXPECT_STREQ(PartitionKindToString(PartitionKind::kMain), "main");
  EXPECT_STREQ(PartitionKindToString(PartitionKind::kDelta), "delta");
  EXPECT_STREQ(AgeClassToString(AgeClass::kHot), "hot");
  EXPECT_STREQ(AgeClassToString(AgeClass::kCold), "cold");
}

}  // namespace
}  // namespace aggcache
