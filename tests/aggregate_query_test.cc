#include "query/aggregate_query.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class AggregateQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
};

TEST_F(AggregateQueryTest, ValidQueryPasses) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  EXPECT_OK(query.Validate(db_));
}

TEST_F(AggregateQueryTest, UnknownTableFails) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  query.tables[1].table_name = "Nope";
  EXPECT_FALSE(query.Validate(db_).ok());
}

TEST_F(AggregateQueryTest, UnknownColumnFails) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  query.group_by[0].column = "Nope";
  EXPECT_FALSE(query.Validate(db_).ok());
}

TEST_F(AggregateQueryTest, JoinTypeMismatchFails) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  query.joins[0].right_column = "Amount";  // double vs int64.
  EXPECT_FALSE(query.Validate(db_).ok());
}

TEST_F(AggregateQueryTest, DisconnectedTableFails) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  query.joins.clear();
  Status status = query.Validate(db_);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(AggregateQueryTest, SelfJoinRejected) {
  AggregateQuery query;
  query.tables = {TableRef{"Header"}, TableRef{"Header"}};
  query.joins = {JoinCondition{0, "HeaderID", 1, "HeaderID"}};
  query.group_by = {GroupByRef{0, "FiscalYear"}};
  query.aggregates = {
      AggregateSpec{AggregateFunction::kCountStar, 0, "", "n"}};
  EXPECT_FALSE(query.Validate(db_).ok());
}

TEST_F(AggregateQueryTest, MissingGroupByOrAggregatesFails) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  AggregateQuery no_group = query;
  no_group.group_by.clear();
  EXPECT_FALSE(no_group.Validate(db_).ok());
  AggregateQuery no_aggs = query;
  no_aggs.aggregates.clear();
  EXPECT_FALSE(no_aggs.Validate(db_).ok());
}

TEST_F(AggregateQueryTest, SumOverStringRejected) {
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .GroupBy("Header", "FiscalYear")
                             .Sum("Header", "FiscalYear", "ok")
                             .Build();
  EXPECT_OK(query.Validate(db_));
  // Now point the SUM at a string column via a fresh query on a table with
  // a string column.
  Database db2;
  auto t = db2.CreateTable(SchemaBuilder("S")
                               .AddColumn("k", ColumnType::kInt64)
                               .AddColumn("s", ColumnType::kString)
                               .Build());
  ASSERT_TRUE(t.ok());
  AggregateQuery bad = QueryBuilder()
                           .From("S")
                           .GroupBy("S", "k")
                           .Sum("S", "s", "bad")
                           .Build();
  EXPECT_FALSE(bad.Validate(db2).ok());
}

TEST_F(AggregateQueryTest, FilterOperandTypeMismatchFails) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  query.filters.push_back(
      FilterPredicate{0, "FiscalYear", CompareOp::kEq, Value("2013")});
  EXPECT_FALSE(query.Validate(db_).ok());
}

TEST_F(AggregateQueryTest, CacheabilityDependsOnFunctions) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  EXPECT_TRUE(query.IsCacheable());
  query.aggregates.push_back(
      AggregateSpec{AggregateFunction::kMax, 1, "Amount", "m"});
  EXPECT_FALSE(query.IsCacheable());
}

TEST_F(AggregateQueryTest, CanonicalStringIsStable) {
  AggregateQuery a = testing_util::HeaderItemQuery();
  AggregateQuery b = testing_util::HeaderItemQuery();
  EXPECT_EQ(a.CanonicalString(), b.CanonicalString());
  b.filters.push_back(
      FilterPredicate{0, "FiscalYear", CompareOp::kEq,
                      Value(int64_t{2013})});
  EXPECT_NE(a.CanonicalString(), b.CanonicalString());
}

TEST_F(AggregateQueryTest, ToSqlRendersAllClauses) {
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .Join("Item", "HeaderID", "HeaderID")
                             .Filter("Header", "FiscalYear", CompareOp::kEq,
                                     Value(int64_t{2013}))
                             .GroupBy("Header", "FiscalYear")
                             .Sum("Item", "Amount", "Revenue")
                             .Build();
  std::string sql = query.ToSql();
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("SUM(Item.Amount) AS Revenue"), std::string::npos);
  EXPECT_NE(sql.find("Header.HeaderID = Item.HeaderID"), std::string::npos);
  EXPECT_NE(sql.find("Header.FiscalYear = 2013"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY Header.FiscalYear"), std::string::npos);
}

TEST_F(AggregateQueryTest, BuilderJoinViaExplicitTable) {
  // Star join: both Item-like tables join to Header (table 0).
  auto extra = db_.CreateTable(SchemaBuilder("Note")
                                   .AddColumn("NoteID", ColumnType::kInt64)
                                   .PrimaryKey()
                                   .AddColumn("HeaderID",
                                              ColumnType::kInt64)
                                   .References("Header")
                                   .Build());
  ASSERT_TRUE(extra.ok());
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .Join("Item", "HeaderID", "HeaderID")
                             .Join("Note", "HeaderID", "HeaderID", /*via=*/0)
                             .GroupBy("Header", "FiscalYear")
                             .CountStar("n")
                             .Build();
  EXPECT_OK(query.Validate(db_));
  EXPECT_EQ(query.joins[1].left_table, 0u);
  EXPECT_EQ(query.joins[1].right_table, 2u);
}

TEST_F(AggregateQueryTest, AggregateFunctionsList) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto fns = query.AggregateFunctions();
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0], AggregateFunction::kSum);
  EXPECT_EQ(fns[1], AggregateFunction::kCountStar);
}

}  // namespace
}  // namespace aggcache
