#include <algorithm>
#include <limits>

#include "gtest/gtest.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

using testing_util::CreateHeaderItemTables;

class HotColdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateHeaderItemTables(&db_, &header_, &item_);
    int64_t next_item = 1;
    for (int64_t h = 1; h <= 20; ++h) {
      int64_t year = h <= 15 ? 2010 : 2014;  // 15 old, 5 recent.
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, year, /*num_items=*/2, 10.0, &next_item));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
};

TEST_F(HotColdTest, SplitMovesOldRowsToCold) {
  ASSERT_OK(header_->SplitHotCold("FiscalYear", Value(int64_t{2014})));
  ASSERT_EQ(header_->num_groups(), 2u);
  EXPECT_EQ(header_->group(0).age, AgeClass::kHot);
  EXPECT_EQ(header_->group(1).age, AgeClass::kCold);
  EXPECT_EQ(header_->group(0).main.num_rows(), 5u);
  EXPECT_EQ(header_->group(1).main.num_rows(), 15u);
  EXPECT_TRUE(header_->group(0).delta.empty());
  EXPECT_TRUE(header_->group(1).delta.empty());
}

TEST_F(HotColdTest, PkIndexSurvivesSplit) {
  ASSERT_OK(header_->SplitHotCold("FiscalYear", Value(int64_t{2014})));
  auto cold_loc = header_->FindByPk(Value(int64_t{3}));
  ASSERT_TRUE(cold_loc.has_value());
  EXPECT_EQ(cold_loc->group, 1u);
  EXPECT_EQ(header_->ValueAt(*cold_loc, 1), Value(int64_t{2010}));
  auto hot_loc = header_->FindByPk(Value(int64_t{18}));
  ASSERT_TRUE(hot_loc.has_value());
  EXPECT_EQ(hot_loc->group, 0u);
}

TEST_F(HotColdTest, NewInsertsGoToHotDelta) {
  ASSERT_OK(header_->SplitHotCold("FiscalYear", Value(int64_t{2014})));
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{21}), Value(int64_t{2014})}));
  EXPECT_EQ(header_->group(0).delta.num_rows(), 1u);
  EXPECT_EQ(header_->group(1).delta.num_rows(), 0u);
}

TEST_F(HotColdTest, SplitTwiceFails) {
  ASSERT_OK(header_->SplitHotCold("FiscalYear", Value(int64_t{2014})));
  EXPECT_EQ(header_->SplitHotCold("FiscalYear", Value(int64_t{2014})).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(HotColdTest, SplitRequiresEmptyDelta) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{99}), Value(int64_t{2014})}));
  EXPECT_EQ(header_->SplitHotCold("FiscalYear", Value(int64_t{2014})).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(HotColdTest, SplitUnknownColumnFails) {
  EXPECT_EQ(header_->SplitHotCold("Nope", Value(int64_t{1})).code(),
            StatusCode::kNotFound);
}

TEST_F(HotColdTest, MergePerGroupAfterSplit) {
  ASSERT_OK(header_->SplitHotCold("FiscalYear", Value(int64_t{2014})));
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{21}), Value(int64_t{2014})}));
  ASSERT_OK(db_.Merge("Header"));
  EXPECT_EQ(header_->group(0).main.num_rows(), 6u);
  EXPECT_EQ(header_->group(1).main.num_rows(), 15u);
  EXPECT_TRUE(header_->group(0).delta.empty());
}

TEST_F(HotColdTest, QueriesSpanGroupsCorrectly) {
  // Split both tables consistently on the business age (header year /
  // matching items via tid ranges is not possible for Item, so split Item
  // by its tid_Header range boundary instead: items of cold headers have
  // tid_Header <= the max cold header tid).
  ASSERT_OK(header_->SplitHotCold("FiscalYear", Value(int64_t{2014})));
  // Find the smallest hot header tid: headers 16..20 are hot.
  int64_t min_hot_tid = std::numeric_limits<int64_t>::max();
  const Partition& hot_main = header_->group(0).main;
  for (size_t r = 0; r < hot_main.num_rows(); ++r) {
    min_hot_tid = std::min(min_hot_tid, hot_main.column(2).GetInt64(r));
  }
  ASSERT_OK(item_->SplitHotCold("tid_Header", Value(min_hot_tid)));
  db_.RegisterAgingGroup({"Header", "Item"});

  Executor executor(&db_);
  auto result = executor.ExecuteUncached(
      testing_util::HeaderItemQuery(), db_.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(result.ok()) << result.status();
  // 20 headers x 2 items x 10.0: group 2010 -> 15*2 items, 2014 -> 5*2.
  auto rows = result->Rows({AggregateFunction::kSum,
                            AggregateFunction::kCountStar});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(int64_t{2010}));
  EXPECT_EQ(rows[0][2], Value(int64_t{30}));
  EXPECT_EQ(rows[1][0], Value(int64_t{2014}));
  EXPECT_EQ(rows[1][2], Value(int64_t{10}));
}

TEST_F(HotColdTest, CachedStrategiesAgreeUnderMultiGroupWorkload) {
  // Randomized end-to-end coverage of the per-temperature cache paths:
  // split both tables consistently, then interleave inserts, late items,
  // updates, deletes, and merges while checking every strategy against
  // uncached execution.
  ASSERT_OK(header_->SplitHotCold("HeaderID", Value(int64_t{11})));
  ASSERT_OK(item_->SplitHotCold("HeaderID", Value(int64_t{11})));
  db_.RegisterAgingGroup({"Header", "Item"});
  AggregateCacheManager cache(&db_);
  AggregateQuery query = testing_util::HeaderItemQuery();

  Rng rng(99);
  int64_t next_header = 21;
  int64_t next_item = 1000;
  for (int step = 0; step < 25; ++step) {
    switch (rng.UniformInt(0, 4)) {
      case 0:
      case 1: {  // New business object.
        ASSERT_OK(testing_util::InsertBusinessObject(
            &db_, header_, item_, next_header++,
            2010 + rng.UniformInt(0, 4), 2, rng.UniformDouble(1.0, 9.0),
            &next_item));
        break;
      }
      case 2: {  // Late item on a hot header (cold rows age out of reach).
        Transaction txn = db_.Begin();
        int64_t header_id = rng.UniformInt(12, next_header - 1);
        if (header_->FindByPk(Value(header_id))) {
          ASSERT_OK(item_->Insert(txn, {Value(next_item++), Value(header_id),
                                        Value(1.5)}));
        }
        break;
      }
      case 3: {  // Update or delete an item, possibly in a cold main.
        Transaction txn = db_.Begin();
        int64_t item_id = rng.UniformInt(1, 40);
        auto loc = item_->FindByPk(Value(item_id));
        if (loc) {
          if (rng.Chance(0.5)) {
            Value header_ref = item_->ValueAt(*loc, 1);
            ASSERT_OK(item_->UpdateByPk(
                txn, Value(item_id),
                {Value(item_id), header_ref, Value(2.5)}));
          } else {
            ASSERT_OK(item_->DeleteByPk(txn, Value(item_id)));
          }
        }
        break;
      }
      default: {  // Merge one table or both.
        if (rng.Chance(0.5)) {
          ASSERT_OK(db_.MergeTables({"Header", "Item"}));
        } else {
          ASSERT_OK(db_.Merge(rng.Chance(0.5) ? "Header" : "Item"));
        }
        break;
      }
    }
    if (step % 5 == 4) {
      testing_util::ExpectAllStrategiesAgree(&db_, &cache, query);
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "diverged at step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace aggcache
