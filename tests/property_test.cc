// Randomized end-to-end property tests: under an arbitrary interleaving of
// inserts, updates, deletes, merges, and hot/cold partition splits, every
// cached execution strategy (with and without pruning and pushdown) must
// agree with uncached execution — the paper's guarantee that compensation
// and dynamic pruning are always correct. The aggregate function is also
// randomized per run, including MIN/MAX, which are not self-maintainable
// and must exercise the uncached-fallback path instead.

#include <map>
#include <set>

#include <sstream>

#include "gtest/gtest.h"
#include "objectaware/matching_dependency.h"
#include "storage/snapshot.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class RandomWorkloadTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    cache_ = std::make_unique<AggregateCacheManager>(&db_);
    rng_ = Rng(GetParam());
  }

  void InsertBusinessObject() {
    Transaction txn = db_.Begin();
    int64_t header_id = next_header_id_++;
    ASSERT_OK(header_->Insert(
        txn, {Value(header_id),
              Value(int64_t{2010} + rng_.UniformInt(0, 4))}));
    live_headers_.insert(header_id);
    header_tid_[header_id] = txn.tid();
    int items = static_cast<int>(rng_.UniformInt(1, 4));
    for (int i = 0; i < items; ++i) {
      int64_t item_id = next_item_id_++;
      ASSERT_OK(item_->Insert(txn, {Value(item_id), Value(header_id),
                                    Value(rng_.UniformDouble(1.0, 50.0))}));
      live_items_[item_id] = header_id;
    }
  }

  // After a consistent-aging split, updates and late child inserts must
  // target hot objects only (Section 5.4): cold partitions stay immutable,
  // which is what keeps cold⋈hot logical pruning sound. Deletes are pure
  // invalidations and remain safe anywhere.
  bool IsHot(int64_t header_id) const {
    if (split_tid_ == 0) return true;
    auto it = header_tid_.find(header_id);
    return it != header_tid_.end() &&
           it->second >= static_cast<Tid>(split_tid_);
  }

  std::set<int64_t> MutableHeaders() const {
    if (split_tid_ == 0) return live_headers_;
    std::set<int64_t> hot;
    for (int64_t id : live_headers_) {
      if (IsHot(id)) hot.insert(id);
    }
    return hot;
  }

  void InsertLateItem() {
    std::set<int64_t> candidates = MutableHeaders();
    if (candidates.empty()) return;
    Transaction txn = db_.Begin();
    int64_t header_id = RandomFrom(candidates);
    int64_t item_id = next_item_id_++;
    ASSERT_OK(item_->Insert(txn, {Value(item_id), Value(header_id),
                                  Value(rng_.UniformDouble(1.0, 50.0))}));
    live_items_[item_id] = header_id;
  }

  void UpdateHeader() {
    std::set<int64_t> candidates = MutableHeaders();
    if (candidates.empty()) return;
    Transaction txn = db_.Begin();
    int64_t header_id = RandomFrom(candidates);
    ASSERT_OK(header_->UpdateByPk(
        txn, Value(header_id),
        {Value(header_id), Value(int64_t{2010} + rng_.UniformInt(0, 4))}));
  }

  void UpdateItem() {
    std::vector<int64_t> candidates;
    for (const auto& [item_id, header_id] : live_items_) {
      if (IsHot(header_id)) candidates.push_back(item_id);
    }
    if (candidates.empty()) return;
    Transaction txn = db_.Begin();
    int64_t item_id = candidates[rng_.UniformInt(
        0, static_cast<int64_t>(candidates.size()) - 1)];
    ASSERT_OK(item_->UpdateByPk(
        txn, Value(item_id),
        {Value(item_id), Value(live_items_[item_id]),
         Value(rng_.UniformDouble(1.0, 50.0))}));
  }

  void DeleteItem() {
    if (live_items_.empty()) return;
    Transaction txn = db_.Begin();
    auto it = live_items_.begin();
    std::advance(it, rng_.UniformInt(
                         0, static_cast<int64_t>(live_items_.size()) - 1));
    ASSERT_OK(item_->DeleteByPk(txn, Value(it->first)));
    live_items_.erase(it);
  }

  void DeleteHeaderWithItems() {
    if (live_headers_.empty()) return;
    Transaction txn = db_.Begin();
    int64_t header_id = RandomFrom(live_headers_);
    // Business-object delete: items first, then the header.
    for (auto it = live_items_.begin(); it != live_items_.end();) {
      if (it->second == header_id) {
        ASSERT_OK(item_->DeleteByPk(txn, Value(it->first)));
        it = live_items_.erase(it);
      } else {
        ++it;
      }
    }
    ASSERT_OK(header_->DeleteByPk(txn, Value(header_id)));
    live_headers_.erase(header_id);
  }

  void MergeSomething() {
    int64_t choice = rng_.UniformInt(0, 3);
    MergeOptions options;
    options.keep_invalidated = rng_.Chance(0.3);
    if (choice == 0) {
      ASSERT_OK(db_.Merge("Header", options));
    } else if (choice == 1) {
      ASSERT_OK(db_.Merge("Item", options));
    } else {
      ASSERT_OK(db_.MergeTables({"Header", "Item"}, options));
    }
  }

  // One-time hot/cold split of the business object along the temporal MD
  // columns (Section 5.4's consistent aging): merge both tables so the
  // deltas are empty, split the header on its own tid and the item on the
  // propagated header tid at the same threshold, and register the aging
  // group so the pruner may treat cold⋈hot combinations as empty.
  void MaybeSplitHotCold() {
    if (split_tid_ != 0) return;
    Tid last = db_.txn_manager().last_committed();
    if (last < 4 || live_headers_.empty()) return;
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
    int64_t threshold = rng_.UniformInt(1, static_cast<int64_t>(last));
    ASSERT_OK(header_->SplitHotCold("tid_Header", Value(threshold)));
    ASSERT_OK(item_->SplitHotCold("tid_Header", Value(threshold)));
    db_.RegisterAgingGroup({"Header", "Item"});
    split_tid_ = threshold;
    ASSERT_EQ(header_->num_groups(), 2u);
    ASSERT_EQ(item_->num_groups(), 2u);
    ASSERT_TRUE(db_.InSameAgingGroup("Header", "Item"));
  }

  void RunOneStep() {
    int64_t op = rng_.UniformInt(0, 10);
    switch (op) {
      case 0:
      case 1:
      case 2:
        InsertBusinessObject();
        break;
      case 3:
        InsertLateItem();
        break;
      case 4:
        UpdateHeader();
        break;
      case 5:
        UpdateItem();
        break;
      case 6:
        DeleteItem();
        break;
      case 7:
        DeleteHeaderWithItems();
        break;
      case 8:
        MaybeSplitHotCold();
        break;
      default:
        MergeSomething();
        break;
    }
  }

  int64_t RandomFrom(const std::set<int64_t>& ids) {
    auto it = ids.begin();
    std::advance(it, rng_.UniformInt(
                         0, static_cast<int64_t>(ids.size()) - 1));
    return *it;
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  std::unique_ptr<AggregateCacheManager> cache_;
  Rng rng_{0};
  int64_t next_header_id_ = 1;
  int64_t next_item_id_ = 1;
  std::set<int64_t> live_headers_;
  std::map<int64_t, int64_t> live_items_;  // item -> header.
  std::map<int64_t, Tid> header_tid_;     // header -> creating txn.
  int64_t split_tid_ = 0;  // 0 until the one-time hot/cold split.
};

TEST_P(RandomWorkloadTest, AllStrategiesAlwaysAgree) {
  AggregateQuery join_query = testing_util::HeaderItemQuery();
  AggregateQuery single_query = QueryBuilder()
                                    .From("Item")
                                    .GroupBy("Item", "HeaderID")
                                    .Sum("Item", "Amount", "total")
                                    .CountStar("n")
                                    .Build();
  for (int step = 0; step < 60; ++step) {
    RunOneStep();
    if (step % 5 == 4) {
      testing_util::ExpectAllStrategiesAgree(&db_, cache_.get(), join_query);
      testing_util::ExpectAllStrategiesAgree(&db_, cache_.get(),
                                             single_query);
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "diverged at step " << step << " (seed " << GetParam()
               << ")";
      }
    }
  }
}

TEST_P(RandomWorkloadTest, RandomizedAggregateFunctionAgrees) {
  // One aggregate function per run, derived from the seed so the suite
  // deterministically covers all five. MIN and MAX are not
  // self-maintainable: the cache must refuse them and every "cached"
  // strategy must fall back to uncached execution — still correct, never
  // a stale partial.
  int64_t pick = static_cast<int64_t>(GetParam() % 5);
  QueryBuilder builder;
  builder.From("Header")
      .Join("Item", "HeaderID", "HeaderID")
      .GroupBy("Header", "FiscalYear");
  switch (pick) {
    case 0:
      builder.Sum("Item", "Amount", "agg");
      break;
    case 1:
      builder.Count("Item", "Amount", "agg");
      break;
    case 2:
      builder.Avg("Item", "Amount", "agg");
      break;
    case 3:
      builder.Min("Item", "Amount", "agg");
      break;
    default:
      builder.Max("Item", "Amount", "agg");
      break;
  }
  AggregateQuery query = builder.CountStar("n").Build();
  for (int step = 0; step < 40; ++step) {
    RunOneStep();
    if (step % 5 != 4) continue;
    testing_util::ExpectAllStrategiesAgree(&db_, cache_.get(), query);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << AggregateFunctionToString(query.aggregates[0].fn)
             << " diverged at step " << step << " (seed " << GetParam()
             << ")";
    }
  }
  if (pick >= 3) {
    Transaction txn = db_.Begin();
    auto result = cache_->Execute(query, txn, ExecutionOptions());
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(cache_->last_exec_stats().used_cache);
    EXPECT_EQ(cache_->Find(query), nullptr);
  }
}

TEST_P(RandomWorkloadTest, MatchingDependencyAlwaysHolds) {
  for (int step = 0; step < 60; ++step) {
    RunOneStep();
    if (step % 10 == 9) {
      auto holds = VerifyMdHolds(db_, "Header", "Item");
      ASSERT_TRUE(holds.ok());
      EXPECT_TRUE(*holds) << "MD violated at step " << step;
    }
  }
}

TEST_P(RandomWorkloadTest, PrunedSubjoinsAreEmpty) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  for (int step = 0; step < 40; ++step) {
    RunOneStep();
    if (step % 8 != 7) continue;
    auto bound = BoundQuery::Bind(db_, query);
    ASSERT_TRUE(bound.ok());
    std::vector<MdBinding> mds = ResolveMds(*bound);
    JoinPruner pruner(&db_, PruneLevel::kFull);
    Executor executor(&db_);
    Snapshot now = db_.txn_manager().GlobalSnapshot();
    for (const SubjoinCombination& combo :
         EnumerateAllCombinations(bound->tables)) {
      if (!pruner.ShouldPrune(*bound, mds, combo).pruned) continue;
      auto result = executor.ExecuteSubjoin(*bound, combo, now);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(result->empty())
          << "pruned non-empty subjoin " << CombinationToString(combo)
          << " at step " << step << " (seed " << GetParam() << ")";
    }
  }
}

TEST_P(RandomWorkloadTest, SnapshotRoundTripPreservesEverything) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  for (int step = 0; step < 30; ++step) {
    RunOneStep();
    if (step % 10 != 9) continue;
    std::ostringstream out;
    ASSERT_OK(WriteSnapshot(db_, out));
    Database restored;
    std::istringstream in(out.str());
    ASSERT_OK(ReadSnapshot(in, &restored));
    // Same visible data, same query results, same transaction counter.
    EXPECT_EQ(restored.txn_manager().last_committed(),
              db_.txn_manager().last_committed());
    Executor original_exec(&db_);
    Executor restored_exec(&restored);
    auto a = original_exec.ExecuteUncached(
        query, db_.txn_manager().GlobalSnapshot());
    auto b = restored_exec.ExecuteUncached(
        query, restored.txn_manager().GlobalSnapshot());
    ASSERT_TRUE(a.ok() && b.ok());
    std::string diff;
    EXPECT_TRUE(a->ApproxEquals(*b, 1e-12, &diff))
        << "step " << step << " (seed " << GetParam() << "): " << diff;
    // A second-generation snapshot is byte-identical (canonical form).
    std::ostringstream out2;
    ASSERT_OK(WriteSnapshot(restored, out2));
    EXPECT_EQ(out.str(), out2.str()) << "snapshot not canonical at step "
                                     << step;
  }
}

TEST_P(RandomWorkloadTest, HavingAgreesAcrossStrategies) {
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .Join("Item", "HeaderID", "HeaderID")
                             .GroupBy("Header", "FiscalYear")
                             .Sum("Item", "Amount", "revenue")
                             .Having(CompareOp::kGt, Value(40.0))
                             .CountStar("n")
                             .Build();
  for (int step = 0; step < 30; ++step) {
    RunOneStep();
    if (step % 6 != 5) continue;
    testing_util::ExpectAllStrategiesAgree(&db_, cache_.get(), query);
  }
}

TEST_P(RandomWorkloadTest, VisibleRowCountsConsistentAcrossMerges) {
  for (int step = 0; step < 40; ++step) {
    RunOneStep();
    Snapshot now = db_.txn_manager().GlobalSnapshot();
    EXPECT_EQ(header_->VisibleRows(now), live_headers_.size());
    EXPECT_EQ(item_->VisibleRows(now), live_items_.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace aggcache
