// Parameterized sweeps over workload-generator configurations: for every
// scale the invariants must hold — matching dependencies, cache/uncached
// agreement, delta-population accounting, and pruning effectiveness under
// perfect temporal locality.

#include <tuple>

#include "gtest/gtest.h"
#include "objectaware/matching_dependency.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

// --- ERP generator sweep ----------------------------------------------------

using ErpParam = std::tuple<size_t /*headers*/, size_t /*categories*/,
                            size_t /*items_per_header*/>;

class ErpSweepTest : public ::testing::TestWithParam<ErpParam> {};

TEST_P(ErpSweepTest, InvariantsHoldAtEveryScale) {
  auto [headers, categories, items_per_header] = GetParam();
  Database db;
  ErpConfig config;
  config.num_headers_main = headers;
  config.num_categories = categories;
  config.avg_items_per_header = items_per_header;
  auto dataset_or = ErpDataset::Create(&db, config);
  ASSERT_TRUE(dataset_or.ok()) << dataset_or.status();
  ErpDataset& dataset = dataset_or.value();

  // Structure: everything merged, row counts plausible.
  EXPECT_EQ(dataset.header()->group(0).main.num_rows(), headers);
  EXPECT_TRUE(dataset.item()->group(0).delta.empty());
  size_t items = dataset.item()->group(0).main.num_rows();
  EXPECT_GE(items, headers);  // At least one item per header.
  EXPECT_LE(items, headers * (2 * items_per_header));

  // Matching dependencies hold after the bulk load.
  auto md = VerifyMdHolds(db, "Header", "Item");
  ASSERT_TRUE(md.ok());
  EXPECT_TRUE(*md);

  // The profit query agrees across strategies after fresh inserts.
  AggregateCacheManager cache(&db);
  Rng rng(headers);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dataset.InsertBusinessObject(rng).ok());
  }
  testing_util::ExpectAllStrategiesAgree(&db, &cache,
                                         dataset.ProfitByCategoryQuery(2013));

  // Perfect temporal locality: full pruning executes exactly one subjoin
  // (delta x delta x empty-category-delta is itself pruned, leaving
  // header-delta x item-delta x category-main).
  ExecutionOptions full;
  full.strategy = ExecutionStrategy::kCachedFullPruning;
  Transaction txn = db.Begin();
  auto result = cache.Execute(dataset.ProfitByCategoryQuery(2013), txn, full);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(cache.last_exec_stats().subjoins_executed, 1u);
  EXPECT_EQ(cache.last_exec_stats().subjoins_pruned, 6u);
}

INSTANTIATE_TEST_SUITE_P(
    Scales, ErpSweepTest,
    ::testing::Values(ErpParam{50, 3, 2}, ErpParam{200, 10, 4},
                      ErpParam{500, 25, 6}, ErpParam{1000, 50, 10}));

// --- CH-benCHmark sweep ------------------------------------------------------

using ChParam = std::tuple<size_t /*warehouses*/, size_t /*items*/,
                           double /*delta fraction*/>;

class ChBenchSweepTest : public ::testing::TestWithParam<ChParam> {};

TEST_P(ChBenchSweepTest, InvariantsHoldAtEveryScale) {
  auto [warehouses, items, delta_fraction] = GetParam();
  Database db;
  ChBenchConfig config;
  config.num_warehouses = warehouses;
  config.num_items = items;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 5;
  config.orders_per_customer = 4;
  config.avg_orderlines_per_order = 3;
  config.delta_fraction = delta_fraction;
  auto dataset_or = ChBenchDataset::Create(&db, config);
  ASSERT_TRUE(dataset_or.ok()) << dataset_or.status();
  ChBenchDataset& dataset = dataset_or.value();

  // Delta population tracks the configured fraction.
  const Table* orders = db.GetTable("orders").value();
  size_t main_rows = orders->group(0).main.num_rows();
  size_t delta_rows = orders->group(0).delta.num_rows();
  double fraction = static_cast<double>(delta_rows) /
                    static_cast<double>(main_rows + delta_rows);
  EXPECT_NEAR(fraction, delta_fraction, 0.03);

  // MDs hold on the order business object.
  for (auto [ref, fk] : {std::pair{"customer", "orders"},
                         std::pair{"orders", "orderline"}}) {
    auto holds = VerifyMdHolds(db, ref, fk);
    ASSERT_TRUE(holds.ok()) << ref << "->" << fk;
    EXPECT_TRUE(*holds) << ref << "->" << fk;
  }

  // Q3 agrees across strategies at every scale.
  AggregateCacheManager cache(&db);
  testing_util::ExpectAllStrategiesAgree(&db, &cache, dataset.Q3());
}

INSTANTIATE_TEST_SUITE_P(Scales, ChBenchSweepTest,
                         ::testing::Values(ChParam{1, 20, 0.05},
                                           ChParam{2, 50, 0.05},
                                           ChParam{1, 50, 0.20},
                                           ChParam{3, 30, 0.10}));

}  // namespace
}  // namespace aggcache
