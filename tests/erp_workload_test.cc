#include "workload/erp_generator.h"

#include "gtest/gtest.h"
#include "objectaware/matching_dependency.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

ErpConfig SmallConfig() {
  ErpConfig config;
  config.num_headers_main = 100;
  config.num_categories = 5;
  config.avg_items_per_header = 4;
  return config;
}

TEST(ErpGeneratorTest, CreateLoadsAndMerges) {
  Database db;
  auto dataset_or = ErpDataset::Create(&db, SmallConfig());
  ASSERT_TRUE(dataset_or.ok()) << dataset_or.status();
  ErpDataset dataset = std::move(dataset_or).value();
  EXPECT_EQ(dataset.header()->group(0).main.num_rows(), 100u);
  EXPECT_TRUE(dataset.header()->group(0).delta.empty());
  EXPECT_GT(dataset.item()->group(0).main.num_rows(), 100u);
  EXPECT_TRUE(dataset.item()->group(0).delta.empty());
  // 5 categories x 2 languages.
  EXPECT_EQ(dataset.category()->group(0).main.num_rows(), 10u);
}

TEST(ErpGeneratorTest, MatchingDependenciesHoldAfterLoad) {
  Database db;
  auto dataset_or = ErpDataset::Create(&db, SmallConfig());
  ASSERT_TRUE(dataset_or.ok());
  ErpDataset& dataset = dataset_or.value();
  auto header_md = VerifyMdHolds(db, "Header", "Item");
  ASSERT_TRUE(header_md.ok());
  EXPECT_TRUE(*header_md);
  auto category_md = VerifyMdHolds(db, "ProductCategory", "Item");
  ASSERT_TRUE(category_md.ok());
  EXPECT_TRUE(*category_md);

  // Still true after new business objects and late items.
  Rng rng(1);
  ASSERT_TRUE(dataset.InsertBusinessObject(rng).ok());
  ASSERT_OK(dataset.InsertLateItems(rng, 5));
  header_md = VerifyMdHolds(db, "Header", "Item");
  ASSERT_TRUE(header_md.ok());
  EXPECT_TRUE(*header_md);
}

TEST(ErpGeneratorTest, BusinessObjectInsertsAreTransactional) {
  Database db;
  auto dataset_or = ErpDataset::Create(&db, SmallConfig());
  ASSERT_TRUE(dataset_or.ok());
  ErpDataset& dataset = dataset_or.value();
  Rng rng(7);
  Tid before = db.txn_manager().last_committed();
  auto items = dataset.InsertBusinessObject(rng);
  ASSERT_TRUE(items.ok());
  // One transaction for the header and all its items.
  EXPECT_EQ(db.txn_manager().last_committed(), before + 1);
  EXPECT_EQ(dataset.header()->group(0).delta.num_rows(), 1u);
  EXPECT_EQ(dataset.item()->group(0).delta.num_rows(), *items);
}

TEST(ErpGeneratorTest, QueriesValidate) {
  Database db;
  auto dataset_or = ErpDataset::Create(&db, SmallConfig());
  ASSERT_TRUE(dataset_or.ok());
  ErpDataset& dataset = dataset_or.value();
  EXPECT_OK(dataset.ProfitByCategoryQuery(2013).Validate(db));
  EXPECT_OK(dataset.RevenueByYearQuery().Validate(db));
  EXPECT_OK(dataset.ItemTotalsByCategoryQuery().Validate(db));
  EXPECT_TRUE(dataset.ProfitByCategoryQuery(2013).IsCacheable());
}

TEST(ErpGeneratorTest, ProfitQueryCachedMatchesUncached) {
  Database db;
  auto dataset_or = ErpDataset::Create(&db, SmallConfig());
  ASSERT_TRUE(dataset_or.ok());
  ErpDataset& dataset = dataset_or.value();
  AggregateCacheManager cache(&db);
  AggregateQuery query = dataset.ProfitByCategoryQuery(2013);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(dataset.InsertBusinessObject(rng).ok());
  }
  ASSERT_OK(dataset.InsertLateItems(rng, 3));
  testing_util::ExpectAllStrategiesAgree(&db, &cache, query);
}

TEST(ErpGeneratorTest, SchemaWithoutTidColumns) {
  Database db;
  ErpConfig config = SmallConfig();
  config.with_tid_columns = false;
  auto dataset_or = ErpDataset::Create(&db, config);
  ASSERT_TRUE(dataset_or.ok()) << dataset_or.status();
  ErpDataset& dataset = dataset_or.value();
  // No tid columns anywhere.
  for (const Table* t : {dataset.header(), dataset.item(),
                         dataset.category()}) {
    for (const ColumnDef& c : t->schema().columns) {
      EXPECT_FALSE(c.is_tid) << t->name() << "." << c.name;
    }
  }
  // The tid-less schema is strictly smaller (Section 6.2's baseline).
  Database db2;
  auto with_tids = ErpDataset::Create(&db2, SmallConfig());
  ASSERT_TRUE(with_tids.ok());
  EXPECT_LT(dataset.item()->ColumnByteSize(),
            with_tids->item()->ColumnByteSize());
}

TEST(ErpGeneratorTest, DeterministicForSameSeed) {
  Database db1;
  Database db2;
  auto d1 = ErpDataset::Create(&db1, SmallConfig());
  auto d2 = ErpDataset::Create(&db2, SmallConfig());
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(d1->item()->group(0).main.num_rows(),
            d2->item()->group(0).main.num_rows());
  Executor e1(&db1);
  Executor e2(&db2);
  auto r1 = e1.ExecuteUncached(d1->RevenueByYearQuery(),
                               db1.txn_manager().GlobalSnapshot());
  auto r2 = e2.ExecuteUncached(d2->RevenueByYearQuery(),
                               db2.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1->ApproxEquals(*r2, 1e-9));
}

}  // namespace
}  // namespace aggcache
