#include "storage/database.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

TEST(DatabaseTest, CreateAndGetTable) {
  Database db;
  auto created = db.CreateTable(SchemaBuilder("T")
                                    .AddColumn("a", ColumnType::kInt64)
                                    .Build());
  ASSERT_TRUE(created.ok());
  auto fetched = db.GetTable("T");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*created, *fetched);
  EXPECT_EQ(db.GetTable("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"T"});
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database db;
  TableSchema schema =
      SchemaBuilder("T").AddColumn("a", ColumnType::kInt64).Build();
  ASSERT_TRUE(db.CreateTable(schema).ok());
  EXPECT_EQ(db.CreateTable(schema).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, InvalidSchemaRejected) {
  Database db;
  TableSchema bad;  // No name, no columns.
  EXPECT_FALSE(db.CreateTable(bad).ok());
}

TEST(DatabaseTest, AgingGroups) {
  Database db;
  db.RegisterAgingGroup({"Header", "Item"});
  EXPECT_TRUE(db.InSameAgingGroup("Header", "Item"));
  EXPECT_TRUE(db.InSameAgingGroup("Item", "Header"));
  EXPECT_FALSE(db.InSameAgingGroup("Header", "Other"));
  EXPECT_FALSE(db.InSameAgingGroup("X", "Y"));
}

class RecordingObserver : public MergeObserver {
 public:
  void OnBeforeMerge(Table& table, size_t group,
                     const Snapshot& snapshot) override {
    (void)snapshot;
    before.emplace_back(table.name(), group);
  }
  void OnAfterMerge(Table& table, size_t group,
                    const Snapshot& snapshot) override {
    (void)snapshot;
    after.emplace_back(table.name(), group);
  }
  std::vector<std::pair<std::string, size_t>> before;
  std::vector<std::pair<std::string, size_t>> after;
};

TEST(DatabaseTest, MergeNotifiesObservers) {
  Database db;
  Table* header = nullptr;
  Table* item = nullptr;
  testing_util::CreateHeaderItemTables(&db, &header, &item);
  RecordingObserver observer;
  db.AddMergeObserver(&observer);
  ASSERT_TRUE(db.Merge("Header").ok());
  ASSERT_EQ(observer.before.size(), 1u);
  EXPECT_EQ(observer.before[0], (std::pair<std::string, size_t>{"Header", 0}));
  ASSERT_EQ(observer.after.size(), 1u);

  db.RemoveMergeObserver(&observer);
  ASSERT_TRUE(db.Merge("Header").ok());
  EXPECT_EQ(observer.before.size(), 1u);  // No further notifications.
}

TEST(DatabaseTest, MergeTablesInOrder) {
  Database db;
  Table* header = nullptr;
  Table* item = nullptr;
  testing_util::CreateHeaderItemTables(&db, &header, &item);
  RecordingObserver observer;
  db.AddMergeObserver(&observer);
  ASSERT_TRUE(db.MergeTables({"Item", "Header"}).ok());
  ASSERT_EQ(observer.before.size(), 2u);
  EXPECT_EQ(observer.before[0].first, "Item");
  EXPECT_EQ(observer.before[1].first, "Header");
  db.RemoveMergeObserver(&observer);
}

TEST(DatabaseTest, MergeUnknownTable) {
  Database db;
  EXPECT_EQ(db.Merge("nope").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, AutoMergeTickRespectsThreshold) {
  Database db;
  Table* header = nullptr;
  Table* item = nullptr;
  testing_util::CreateHeaderItemTables(&db, &header, &item);
  db.RegisterMergeGroup({"Header", "Item"}, /*delta_row_threshold=*/5);

  int64_t next_item = 1;
  for (int64_t h = 1; h <= 2; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(&db, header, item, h, 2013,
                                                 2, 1.0, &next_item));
  }
  // Item delta has 4 rows (< 5), header 2: nothing due.
  auto merged = db.AutoMergeTick();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 0u);
  EXPECT_EQ(header->group(0).main.num_rows(), 0u);

  // One more business object pushes the item delta to 6: the whole group
  // merges together (Section 5.2 synchronization).
  ASSERT_OK(testing_util::InsertBusinessObject(&db, header, item, 3, 2013,
                                               2, 1.0, &next_item));
  merged = db.AutoMergeTick();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 1u);
  EXPECT_EQ(header->group(0).main.num_rows(), 3u);
  EXPECT_EQ(item->group(0).main.num_rows(), 6u);
  EXPECT_TRUE(header->group(0).delta.empty());
  EXPECT_TRUE(item->group(0).delta.empty());

  // Idempotent when nothing new arrived.
  merged = db.AutoMergeTick();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 0u);
}

TEST(DatabaseTest, AutoMergeKeepsCacheConsistent) {
  Database db;
  Table* header = nullptr;
  Table* item = nullptr;
  testing_util::CreateHeaderItemTables(&db, &header, &item);
  AggregateCacheManager cache(&db);
  db.RegisterMergeGroup({"Header", "Item"}, 4);
  AggregateQuery query = testing_util::HeaderItemQuery();
  int64_t next_item = 1;
  for (int64_t h = 1; h <= 6; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(&db, header, item, h, 2013,
                                                 2, 2.0, &next_item));
    auto merged = db.AutoMergeTick();
    ASSERT_TRUE(merged.ok());
    testing_util::ExpectAllStrategiesAgree(&db, &cache, query);
  }
}

TEST(DatabaseTest, AutoMergeTickUnknownTableFails) {
  Database db;
  db.RegisterMergeGroup({"Nope"}, 0);
  EXPECT_FALSE(db.AutoMergeTick().ok());
}

TEST(DatabaseTest, TransactionsAdvance) {
  Database db;
  Transaction t1 = db.Begin();
  Transaction t2 = db.Begin();
  EXPECT_GT(t2.tid(), t1.tid());
}

}  // namespace
}  // namespace aggcache
