#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "gtest/gtest.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

namespace fs = std::filesystem;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

constexpr uint32_t kMagic = 0x57414C52;

/// Builds a byte-exact WAL frame (mirrors the writer's framing) so tests
/// can plant records with hostile lsns/lengths the writer would never emit.
std::string Frame(uint64_t lsn, Tid tid, WalRecordType type,
                  const std::string& payload) {
  std::string frame;
  PutU32(&frame, kMagic);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, lsn);
  PutU64(&frame, static_cast<uint64_t>(tid));
  frame.push_back(static_cast<char>(type));
  frame += payload;
  uint32_t crc = Crc32(frame.data() + 4, frame.size() - 4);
  PutU32(&frame, crc);
  return frame;
}

/// Every record below uses a 2-byte payload, so frames are a fixed
/// 4+4+8+8+1+2+4 = 31 bytes and offsets are easy to reason about.
constexpr size_t kFrameBytes = 31;

class WalCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("wal_corruption_data") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  /// Writes `n` valid records (lsn 1..n, 2-byte payloads) through the real
  /// writer and closes it cleanly.
  void WriteValidLog(size_t n) {
    WriteAheadLog::Options options;
    options.policy = WalSyncPolicy::kSync;
    auto wal_or = WriteAheadLog::Open(dir_.string(), options, 1);
    ASSERT_TRUE(wal_or.ok()) << wal_or.status();
    std::unique_ptr<WriteAheadLog> wal = std::move(wal_or).value();
    for (size_t i = 1; i <= n; ++i) {
      ASSERT_OK(wal->Append(WalRecordType::kInsert, static_cast<Tid>(i),
                            StrFormat("p%zu", i % 10)));
    }
  }

  /// The single segment file WriteValidLog produced.
  fs::path SegmentPath() {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (WriteAheadLog::SegmentStartLsn(entry.path().filename().string())
              .has_value()) {
        return entry.path();
      }
    }
    ADD_FAILURE() << "no WAL segment in " << dir_;
    return {};
  }

  std::string ReadBytes(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void WriteBytes(const fs::path& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void AppendBytes(const fs::path& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  WalReadResult Read() {
    auto result_or = WriteAheadLog::ReadDir(dir_.string());
    AGGCACHE_CHECK(result_or.ok()) << result_or.status();
    return std::move(result_or).value();
  }

  fs::path dir_;
};

TEST_F(WalCorruptionTest, CleanLogRoundTrips) {
  WriteValidLog(5);
  WalReadResult result = Read();
  EXPECT_TRUE(result.clean) << result.tail_error;
  ASSERT_EQ(result.records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.records[i].lsn, i + 1);
    EXPECT_EQ(result.records[i].tid, static_cast<Tid>(i + 1));
    EXPECT_EQ(result.records[i].type, WalRecordType::kInsert);
    EXPECT_EQ(result.records[i].payload, StrFormat("p%zu", (i + 1) % 10));
  }
}

TEST_F(WalCorruptionTest, TruncatedTailReturnsValidPrefix) {
  WriteValidLog(5);
  fs::path segment = SegmentPath();
  std::string bytes = ReadBytes(segment);
  ASSERT_EQ(bytes.size(), 5 * kFrameBytes);
  WriteBytes(segment, bytes.substr(0, bytes.size() - 3));

  WalReadResult result = Read();
  EXPECT_FALSE(result.clean);
  EXPECT_NE(result.tail_error.find("torn"), std::string::npos)
      << result.tail_error;
  EXPECT_EQ(result.records.size(), 4u);
  EXPECT_EQ(result.tail_valid_bytes, 4 * kFrameBytes);
  EXPECT_EQ(result.tail_file, segment.string());
}

TEST_F(WalCorruptionTest, BitFlipStopsAtCorruptRecord) {
  WriteValidLog(5);
  fs::path segment = SegmentPath();
  std::string bytes = ReadBytes(segment);
  bytes[2 * kFrameBytes + 25] ^= 0x40;  // Payload byte of record 3.
  WriteBytes(segment, bytes);

  WalReadResult result = Read();
  EXPECT_FALSE(result.clean);
  EXPECT_NE(result.tail_error.find("checksum"), std::string::npos)
      << result.tail_error;
  // Records 1-2 survive; 3 is corrupt, and 4-5 — though byte-wise intact —
  // sit after the break and are never trusted.
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.tail_valid_bytes, 2 * kFrameBytes);
}

TEST_F(WalCorruptionTest, HalfWrittenHeaderStops) {
  WriteValidLog(3);
  fs::path segment = SegmentPath();
  std::string partial;
  PutU32(&partial, kMagic);
  partial += "\x05\x00";  // A few header bytes, then the "crash".
  AppendBytes(segment, partial);

  WalReadResult result = Read();
  EXPECT_FALSE(result.clean);
  EXPECT_NE(result.tail_error.find("torn record header"), std::string::npos)
      << result.tail_error;
  EXPECT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.tail_valid_bytes, 3 * kFrameBytes);
}

TEST_F(WalCorruptionTest, GarbageMagicStops) {
  WriteValidLog(3);
  AppendBytes(SegmentPath(), std::string(64, '\xFF'));

  WalReadResult result = Read();
  EXPECT_FALSE(result.clean);
  EXPECT_NE(result.tail_error.find("bad record magic"), std::string::npos)
      << result.tail_error;
  EXPECT_EQ(result.records.size(), 3u);
}

TEST_F(WalCorruptionTest, DuplicateLsnStops) {
  WriteValidLog(4);
  // A fully valid frame whose lsn repeats the last one: CRC passes, the
  // sequence check must still reject it.
  AppendBytes(SegmentPath(), Frame(4, 9, WalRecordType::kInsert, "zz"));

  WalReadResult result = Read();
  EXPECT_FALSE(result.clean);
  EXPECT_NE(result.tail_error.find("duplicate or out-of-order"),
            std::string::npos)
      << result.tail_error;
  EXPECT_EQ(result.records.size(), 4u);
}

TEST_F(WalCorruptionTest, LsnGapStops) {
  WriteValidLog(4);
  AppendBytes(SegmentPath(), Frame(6, 9, WalRecordType::kInsert, "zz"));

  WalReadResult result = Read();
  EXPECT_FALSE(result.clean);
  EXPECT_NE(result.tail_error.find("gap"), std::string::npos)
      << result.tail_error;
  EXPECT_EQ(result.records.size(), 4u);
}

TEST_F(WalCorruptionTest, ImplausibleLengthStops) {
  WriteValidLog(2);
  // Header claiming a 1 GiB payload; the reader must refuse to allocate or
  // scan for it.
  std::string header;
  PutU32(&header, kMagic);
  PutU32(&header, 1u << 30);
  PutU64(&header, 3);
  PutU64(&header, 3);
  header.push_back(1);
  AppendBytes(SegmentPath(), header);

  WalReadResult result = Read();
  EXPECT_FALSE(result.clean);
  EXPECT_NE(result.tail_error.find("implausible"), std::string::npos)
      << result.tail_error;
  EXPECT_EQ(result.records.size(), 2u);
}

TEST_F(WalCorruptionTest, UnknownRecordTypeStops) {
  WriteValidLog(2);
  AppendBytes(SegmentPath(),
              Frame(3, 3, static_cast<WalRecordType>(200), "zz"));

  WalReadResult result = Read();
  EXPECT_FALSE(result.clean);
  EXPECT_NE(result.tail_error.find("unknown record type"), std::string::npos)
      << result.tail_error;
  EXPECT_EQ(result.records.size(), 2u);
}

TEST_F(WalCorruptionTest, EmptySegmentFileIsHarmless) {
  WriteValidLog(3);
  // A zero-length next segment: exactly what a crash between rotation and
  // the first append leaves behind. Nothing was lost, so the log is clean.
  std::ofstream(dir_ / "wal-00000000000000000100.log").flush();

  WalReadResult result = Read();
  EXPECT_TRUE(result.clean) << result.tail_error;
  EXPECT_EQ(result.records.size(), 3u);
}

/// End-to-end: a torn tail inside a committed atomic scope rolls the whole
/// scope back, the file is truncated to its valid prefix, and the directory
/// keeps working (appends + another recovery) afterwards.
TEST_F(WalCorruptionTest, RecoveryTruncatesTornTailAndContinues) {
  fs::remove_all(dir_);  // DurabilityManager owns directory creation.
  auto db = std::make_unique<Database>();
  auto opened =
      DurabilityManager::Open(dir_.string(), db.get(), DurabilityOptions());
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::unique_ptr<DurabilityManager> durability = std::move(opened).value();
  Table* header = nullptr;
  Table* item = nullptr;
  testing_util::CreateHeaderItemTables(db.get(), &header, &item);
  int64_t next_item_id = 1;
  for (int64_t h = 1; h <= 5; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(db.get(), header, item, h,
                                                 2015, 1, 2.0, &next_item_id));
  }
  durability->SimulateCrash();
  durability.reset();
  db.reset();

  // Tear the last record (the 5th scope's commit) in half.
  fs::path segment;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (WriteAheadLog::SegmentStartLsn(entry.path().filename().string())
            .has_value()) {
      segment = entry.path();
    }
  }
  ASSERT_FALSE(segment.empty());
  std::string bytes = ReadBytes(segment);
  WriteBytes(segment, bytes.substr(0, bytes.size() - 2));

  db = std::make_unique<Database>();
  opened =
      DurabilityManager::Open(dir_.string(), db.get(), DurabilityOptions());
  ASSERT_TRUE(opened.ok()) << opened.status();
  durability = std::move(opened).value();
  const RecoveryReport& report = durability->recovery_report();
  EXPECT_FALSE(report.wal_clean);
  EXPECT_EQ(report.discarded_scopes, 1u);
  Snapshot now = db->txn_manager().GlobalSnapshot();
  Table* restored_header = db->GetTable("Header").value();
  EXPECT_EQ(restored_header->VisibleRows(now), 4u);
  // The torn file was truncated to its valid prefix: the directory accepts
  // new appends and a further recovery sees a clean, continuous log.
  int64_t next_header = 10;
  ASSERT_OK(testing_util::InsertBusinessObject(
      db.get(), restored_header, db->GetTable("Item").value(), next_header,
      2016, 1, 2.0, &next_item_id));
  durability->SimulateCrash();
  durability.reset();
  db = std::make_unique<Database>();
  opened =
      DurabilityManager::Open(dir_.string(), db.get(), DurabilityOptions());
  ASSERT_TRUE(opened.ok()) << opened.status();
  durability = std::move(opened).value();
  EXPECT_TRUE(durability->recovery_report().wal_clean)
      << durability->recovery_report().wal_tail_error;
  EXPECT_EQ(db->GetTable("Header").value()->VisibleRows(
                db->txn_manager().GlobalSnapshot()),
            5u);
}

}  // namespace
}  // namespace aggcache
