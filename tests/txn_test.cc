#include <vector>

#include "gtest/gtest.h"
#include "txn/consistent_view_manager.h"
#include "txn/transaction_manager.h"
#include "txn/types.h"

namespace aggcache {
namespace {

TEST(TransactionManagerTest, TidsAreMonotonic) {
  TransactionManager manager;
  EXPECT_EQ(manager.last_committed(), 0u);
  Transaction t1 = manager.Begin();
  Transaction t2 = manager.Begin();
  Transaction t3 = manager.Begin();
  EXPECT_LT(t1.tid(), t2.tid());
  EXPECT_LT(t2.tid(), t3.tid());
  EXPECT_EQ(manager.last_committed(), t3.tid());
}

TEST(TransactionManagerTest, GlobalSnapshotTracksLastCommit) {
  TransactionManager manager;
  Transaction t1 = manager.Begin();
  EXPECT_EQ(manager.GlobalSnapshot().read_tid, t1.tid());
}

TEST(SnapshotTest, RowVisibility) {
  Snapshot snap{5};
  // Created before/at the snapshot, never invalidated.
  EXPECT_TRUE(snap.RowVisible(/*create=*/3, kNoTid));
  EXPECT_TRUE(snap.RowVisible(5, kNoTid));
  // Created after the snapshot.
  EXPECT_FALSE(snap.RowVisible(6, kNoTid));
  // Invalidated after the snapshot: still visible.
  EXPECT_TRUE(snap.RowVisible(3, 7));
  // Invalidated at or before the snapshot: invisible.
  EXPECT_FALSE(snap.RowVisible(3, 5));
  EXPECT_FALSE(snap.RowVisible(3, 4));
}

TEST(SnapshotTest, TransactionSeesOwnWrites) {
  TransactionManager manager;
  Transaction txn = manager.Begin();
  EXPECT_TRUE(txn.snapshot().RowVisible(txn.tid(), kNoTid));
}

TEST(ConsistentViewManagerTest, ComputesVisibilityVector) {
  std::vector<Tid> create = {1, 2, 3, 4, 5};
  std::vector<Tid> invalidate = {kNoTid, 4, kNoTid, kNoTid, kNoTid};
  BitVector visibility = ConsistentViewManager::ComputeVisibility(
      create, invalidate, Snapshot{4});
  ASSERT_EQ(visibility.size(), 5u);
  EXPECT_TRUE(visibility.Get(0));   // created at 1.
  EXPECT_FALSE(visibility.Get(1));  // invalidated at 4.
  EXPECT_TRUE(visibility.Get(2));
  EXPECT_TRUE(visibility.Get(3));
  EXPECT_FALSE(visibility.Get(4));  // created at 5 > 4.
  EXPECT_EQ(ConsistentViewManager::CountVisible(create, invalidate,
                                                Snapshot{4}),
            3u);
}

TEST(ConsistentViewManagerTest, EmptyPartition) {
  BitVector visibility =
      ConsistentViewManager::ComputeVisibility({}, {}, Snapshot{10});
  EXPECT_EQ(visibility.size(), 0u);
  EXPECT_EQ(ConsistentViewManager::CountVisible({}, {}, Snapshot{10}), 0u);
}

TEST(ConsistentViewManagerTest, VisibilityMatchesCount) {
  std::vector<Tid> create;
  std::vector<Tid> invalidate;
  for (Tid t = 1; t <= 100; ++t) {
    create.push_back(t);
    invalidate.push_back(t % 7 == 0 ? t + 1 : kNoTid);
  }
  for (Tid read : {0ULL, 1ULL, 50ULL, 100ULL, 200ULL}) {
    BitVector v = ConsistentViewManager::ComputeVisibility(
        create, invalidate, Snapshot{read});
    EXPECT_EQ(v.CountOnes(), ConsistentViewManager::CountVisible(
                                 create, invalidate, Snapshot{read}));
  }
}

}  // namespace
}  // namespace aggcache
