// Tests for span tracing (src/obs/span.h) and the cache cost/benefit
// ledger: seq-publication and wraparound semantics of the recorder, loss
// accounting, the Chrome-trace JSON dump (golden — Perfetto and tooling
// load these), RAII parent-child chaining across threads, sampling, EWMA
// ledger math, and an end-to-end reconciliation of a traced query's span
// tree against its QueryTrace timings.

#include "obs/span.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_metrics.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

using testing_util::CreateHeaderItemTables;
using testing_util::HeaderItemQuery;
using testing_util::InsertBusinessObject;

SpanRecorder::Options SmallOptions(size_t spans_per_segment,
                                   size_t max_segments) {
  SpanRecorder::Options options;
  options.spans_per_segment = spans_per_segment;
  options.max_segments = max_segments;
  options.enabled = true;
  return options;
}

TEST(SpanRecorderTest, KindNamesAreStable) {
  EXPECT_STREQ(SpanKindToString(SpanKind::kQuery), "query");
  EXPECT_STREQ(SpanKindToString(SpanKind::kAdmissionWait), "admission_wait");
  EXPECT_STREQ(SpanKindToString(SpanKind::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(SpanKindToString(SpanKind::kSingleFlightWait),
               "singleflight_wait");
  EXPECT_STREQ(SpanKindToString(SpanKind::kEntryBuild), "entry_build");
  EXPECT_STREQ(SpanKindToString(SpanKind::kMainCorrection),
               "main_correction");
  EXPECT_STREQ(SpanKindToString(SpanKind::kDeltaCompensation),
               "delta_compensation");
  EXPECT_STREQ(SpanKindToString(SpanKind::kUncachedExec), "uncached_exec");
  EXPECT_STREQ(SpanKindToString(SpanKind::kSubjoinTask), "subjoin_task");
  EXPECT_STREQ(SpanKindToString(SpanKind::kSharedScanLead),
               "sharedscan_lead");
  EXPECT_STREQ(SpanKindToString(SpanKind::kSharedScanAttach),
               "sharedscan_attach");
  EXPECT_STREQ(SpanKindToString(SpanKind::kMerge), "merge");
  EXPECT_STREQ(SpanKindToString(SpanKind::kCheckpoint), "checkpoint");
  EXPECT_STREQ(SpanKindToString(SpanKind::kWalSync), "wal_sync");
  EXPECT_STREQ(SpanKindToString(SpanKind::kRecoveryReplay),
               "recovery_replay");
}

TEST(SpanRecorderTest, RecordsAndCollectsInOrder) {
  SpanRecorder recorder(SmallOptions(64, 4));
  for (uint64_t i = 1; i <= 10; ++i) {
    recorder.Record(SpanKind::kSubjoinTask, /*span_id=*/i,
                    /*parent_id=*/100, /*query_id=*/7, /*start_us=*/i * 10,
                    /*end_us=*/i * 10 + 5, "build");
  }
  EXPECT_EQ(recorder.recorded_spans(), 10u);
  EXPECT_EQ(recorder.lost_spans(), 0u);

  std::vector<SpanRecorder::Span> spans = recorder.Collect();
  ASSERT_EQ(spans.size(), 10u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, i + 1) << "1-based, gap-free, oldest first";
    EXPECT_EQ(spans[i].kind, SpanKind::kSubjoinTask);
    EXPECT_EQ(spans[i].span_id, i + 1);
    EXPECT_EQ(spans[i].parent_id, 100u);
    EXPECT_EQ(spans[i].query_id, 7u);
    EXPECT_EQ(spans[i].start_us, (i + 1) * 10);
    EXPECT_EQ(spans[i].dur_us, 5u);
    EXPECT_STREQ(spans[i].detail, "build");
  }
}

TEST(SpanRecorderTest, WraparoundKeepsMostRecentSpansInOrder) {
  // 8-slot segment, 30 spans from one thread: the ring has been lapped and
  // must retain exactly the newest 8, still in sequence order. Overwrite is
  // not loss.
  SpanRecorder recorder(SmallOptions(8, 2));
  for (uint64_t i = 1; i <= 30; ++i) {
    recorder.Record(SpanKind::kQuery, i, 0, i, i, i + 1);
  }
  EXPECT_EQ(recorder.recorded_spans(), 30u);
  EXPECT_EQ(recorder.lost_spans(), 0u);

  std::vector<SpanRecorder::Span> spans = recorder.Collect();
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, 23 + i);      // seqs 23..30 survive
    EXPECT_EQ(spans[i].span_id, 23 + i);  // payload moved with its seq
  }
}

TEST(SpanRecorderTest, LossCounterCountsSegmentExhaustionExactly) {
  // One segment total, taken by the main thread's first record; every span
  // from any other thread is counted lost — no more, no less.
  SpanRecorder recorder(SmallOptions(8, 1));
  recorder.Record(SpanKind::kQuery, 1, 0, 1, 0, 1);
  std::thread starved([&recorder] {
    for (uint64_t i = 0; i < 10; ++i) {
      recorder.Record(SpanKind::kSubjoinTask, 2 + i, 1, 1, 0, 1);
    }
  });
  starved.join();
  EXPECT_EQ(recorder.lost_spans(), 10u);
  EXPECT_EQ(recorder.recorded_spans(), 1u);
  ASSERT_EQ(recorder.Collect().size(), 1u);
}

TEST(SpanRecorderTest, SegmentIsReleasedAtThreadExitAndReused) {
  SpanRecorder recorder(SmallOptions(8, 1));
  std::thread first(
      [&recorder] { recorder.Record(SpanKind::kMerge, 1, 0, 1, 0, 1); });
  first.join();
  EXPECT_EQ(recorder.active_segments(), 0u);
  std::thread second(
      [&recorder] { recorder.Record(SpanKind::kMerge, 2, 0, 2, 0, 1); });
  second.join();
  EXPECT_EQ(recorder.lost_spans(), 0u);
  EXPECT_EQ(recorder.recorded_spans(), 2u);
}

TEST(SpanRecorderTest, DisabledRecorderRecordsNothing) {
  SpanRecorder::Options options = SmallOptions(8, 2);
  options.enabled = false;
  SpanRecorder recorder(options);
  recorder.Record(SpanKind::kQuery, 1, 0, 1, 0, 1);
  EXPECT_EQ(recorder.recorded_spans(), 0u);
  EXPECT_TRUE(recorder.Collect().empty());

  recorder.set_enabled(true);
  recorder.Record(SpanKind::kQuery, 1, 0, 1, 0, 1);
  EXPECT_EQ(recorder.recorded_spans(), 1u);
}

TEST(SpanRecorderTest, DetailIsTruncatedTo15Bytes) {
  SpanRecorder recorder(SmallOptions(8, 1));
  recorder.Record(SpanKind::kSubjoinTask, 1, 0, 1, 0, 1,
                  "0123456789012345678901234567890");
  std::vector<SpanRecorder::Span> spans = recorder.Collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].detail, "012345678901234");
}

TEST(SpanRecorderTest, SampleTickHonorsSampleEvery) {
  SpanRecorder::Options options = SmallOptions(8, 1);
  options.sample_every = 4;
  SpanRecorder recorder(options);
  int sampled = 0;
  for (int i = 0; i < 16; ++i) {
    if (recorder.SampleTick()) ++sampled;
  }
  EXPECT_EQ(sampled, 4);
}

TEST(SpanRecorderTest, DumpJsonMatchesChromeTraceGolden) {
  // The dump schema is a contract: Perfetto / chrome://tracing load these
  // files, and CI validates them. Byte-exact golden over a deterministic
  // manually-recorded two-span timeline.
  SpanRecorder recorder(SmallOptions(8, 1));
  recorder.Record(SpanKind::kQuery, /*span_id=*/1, /*parent_id=*/0,
                  /*query_id=*/1, /*start_us=*/100, /*end_us=*/300,
                  "full");
  recorder.Record(SpanKind::kDeltaCompensation, /*span_id=*/2,
                  /*parent_id=*/1, /*query_id=*/1, /*start_us=*/150,
                  /*end_us=*/250, "a\"b\\c");
  EXPECT_EQ(recorder.DumpJson(),
            "{\"schema\":\"aggcache-spans-v1\",\"recorded\":2,\"lost\":0,"
            "\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"query\",\"cat\":\"aggcache\",\"ph\":\"X\","
            "\"ts\":100,\"dur\":200,\"pid\":1,\"tid\":0,"
            "\"args\":{\"id\":1,\"parent\":0,\"detail\":\"full\"}},"
            "{\"name\":\"delta_compensation\",\"cat\":\"aggcache\","
            "\"ph\":\"X\",\"ts\":150,\"dur\":100,\"pid\":1,\"tid\":0,"
            "\"args\":{\"id\":2,\"parent\":1,\"detail\":\"a\\\"b\\\\c\"}}"
            "]}");
}

// ---------------------------------------------------------------------------
// RAII wrappers. These always target the process-global recorder, so the
// tests flip its enabled bit and filter collected spans by their own query
// ids (other tests in the binary may have recorded too).

/// Enables the global recorder for the test's scope; restores the previous
/// state so the (default-off) recorder stays off for everyone else.
class ScopedGlobalSpans {
 public:
  ScopedGlobalSpans() : was_enabled_(SpanRecorder::Global().enabled()) {
    SpanRecorder::Global().set_enabled(true);
  }
  ~ScopedGlobalSpans() { SpanRecorder::Global().set_enabled(was_enabled_); }

 private:
  bool was_enabled_;
};

/// Collects every span of `query_id` from the global recorder.
std::vector<SpanRecorder::Span> SpansOfQuery(uint64_t query_id) {
  std::vector<SpanRecorder::Span> mine;
  for (const SpanRecorder::Span& span : SpanRecorder::Global().Collect()) {
    if (span.query_id == query_id) mine.push_back(span);
  }
  return mine;
}

TEST(ScopedSpanTest, NestedSpansChainParentIds) {
  ScopedGlobalSpans enable;
  uint64_t query_id = 0;
  uint64_t root_id = 0;
  uint64_t lookup_id = 0;
  {
    QueryRootSpan root("golden");
    ASSERT_TRUE(root.active());
    query_id = root.link().query_id;
    root_id = root.link().span_id;
    EXPECT_EQ(CurrentSpanLink().span_id, root_id);
    {
      ScopedSpan lookup(SpanKind::kCacheLookup);
      ASSERT_TRUE(lookup.active());
      lookup_id = lookup.link().span_id;
      EXPECT_EQ(CurrentSpanLink().span_id, lookup_id);
      ScopedSpan build(SpanKind::kEntryBuild);
      EXPECT_EQ(CurrentSpanLink().span_id, build.link().span_id);
    }
    EXPECT_EQ(CurrentSpanLink().span_id, root_id)
        << "inner spans restore the thread-current link";
  }
  EXPECT_FALSE(CurrentSpanLink().sampled()) << "root restores no-span state";

  std::vector<SpanRecorder::Span> spans = SpansOfQuery(query_id);
  ASSERT_EQ(spans.size(), 3u);
  std::map<uint64_t, SpanRecorder::Span> by_id;
  for (const SpanRecorder::Span& span : spans) by_id[span.span_id] = span;
  EXPECT_EQ(by_id[root_id].parent_id, 0u);
  EXPECT_EQ(by_id[root_id].kind, SpanKind::kQuery);
  EXPECT_STREQ(by_id[root_id].detail, "golden");
  EXPECT_EQ(by_id[lookup_id].parent_id, root_id);
  for (const SpanRecorder::Span& span : spans) {
    if (span.kind == SpanKind::kEntryBuild) {
      EXPECT_EQ(span.parent_id, lookup_id);
    }
  }
}

TEST(ScopedSpanTest, CrossThreadSpanLinkParentsWorkerSpans) {
  ScopedGlobalSpans enable;
  uint64_t query_id = 0;
  uint64_t root_id = 0;
  {
    QueryRootSpan root;
    ASSERT_TRUE(root.active());
    query_id = root.link().query_id;
    root_id = root.link().span_id;
    SpanLink parent = CurrentSpanLink();
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([parent] {
        ScopedSpan task(SpanKind::kSubjoinTask, parent, "worker");
      });
    }
    for (std::thread& w : workers) w.join();
  }
  std::vector<SpanRecorder::Span> spans = SpansOfQuery(query_id);
  ASSERT_EQ(spans.size(), 4u);
  int tasks = 0;
  for (const SpanRecorder::Span& span : spans) {
    if (span.kind != SpanKind::kSubjoinTask) continue;
    ++tasks;
    EXPECT_EQ(span.parent_id, root_id);
    EXPECT_EQ(span.query_id, query_id);
  }
  EXPECT_EQ(tasks, 3);
}

TEST(ScopedSpanTest, UnsampledParentMakesChildrenNoOps) {
  ScopedGlobalSpans enable;
  uint64_t before = SpanRecorder::Global().recorded_spans();
  {
    // No QueryRootSpan installed: thread-current link is unsampled, so
    // child spans and explicit unsampled links record nothing.
    ScopedSpan orphan(SpanKind::kCacheLookup);
    EXPECT_FALSE(orphan.active());
    ScopedSpan linked(SpanKind::kSubjoinTask, SpanLink{}, "x");
    EXPECT_FALSE(linked.active());
    RecordSpanSince(SpanKind::kSingleFlightWait, 0);
  }
  EXPECT_EQ(SpanRecorder::Global().recorded_spans(), before);
}

TEST(ScopedSpanTest, BackgroundSpanGetsOwnLaneAndNests) {
  ScopedGlobalSpans enable;
  uint64_t merge_query = 0;
  {
    BackgroundSpan merge(SpanKind::kMerge, "g0");
    ASSERT_TRUE(merge.active());
    merge_query = CurrentSpanLink().query_id;
    ASSERT_NE(merge_query, 0u) << "background span installs thread-current";
    ScopedSpan child(SpanKind::kEntryBuild);
    EXPECT_TRUE(child.active());
  }
  std::vector<SpanRecorder::Span> spans = SpansOfQuery(merge_query);
  ASSERT_EQ(spans.size(), 2u);
  uint64_t merge_id = 0;
  for (const SpanRecorder::Span& span : spans) {
    if (span.kind == SpanKind::kMerge) {
      EXPECT_EQ(span.parent_id, 0u);
      merge_id = span.span_id;
    }
  }
  for (const SpanRecorder::Span& span : spans) {
    if (span.kind == SpanKind::kEntryBuild) {
      EXPECT_EQ(span.parent_id, merge_id)
          << "maintenance under a merge nests beneath the merge span";
    }
  }
}

// ---------------------------------------------------------------------------
// Ledger EWMA math (cache_metrics.h).

TEST(CacheEntryMetricsTest, EwmaSeedsDirectlyThenConverges) {
  std::atomic<double> field{0.0};
  CacheEntryMetrics::Ewma(field, 10.0);
  EXPECT_DOUBLE_EQ(field.load(), 10.0) << "first sample seeds, no decay";
  CacheEntryMetrics::Ewma(field, 20.0);
  EXPECT_DOUBLE_EQ(field.load(), 10.0 + 0.2 * 10.0);
  // Feeding a constant converges to it.
  for (int i = 0; i < 200; ++i) CacheEntryMetrics::Ewma(field, 5.0);
  EXPECT_NEAR(field.load(), 5.0, 1e-6);
}

TEST(CacheEntryMetricsTest, EwmaIsThreadSafeUnderConcurrentSamples) {
  // Concurrent EWMA updates must never lose the field to a torn state: the
  // result of hammering a constant from many threads is that constant.
  std::atomic<double> field{0.0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&field] {
      for (int i = 0; i < 1000; ++i) CacheEntryMetrics::Ewma(field, 8.0);
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_NEAR(field.load(), 8.0, 1e-6);
}

// ---------------------------------------------------------------------------
// End-to-end: a traced query over Header ⋈ Item, spans on. The span tree
// must reconcile with the QueryTrace — one root per execution, children
// parented into it, and the root's children covering the bulk of the
// end-to-end latency (admission wait + lookup + compensation tile; only
// inter-phase glue is uncovered).

class SpanTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateHeaderItemTables(&db_, &header_, &item_);
    // A moderately sized dataset so phase timings dominate the glue code
    // between spans: 40 merged objects plus 10 delta-resident ones.
    for (int64_t h = 1; h <= 40; ++h) {
      ASSERT_OK(InsertBusinessObject(&db_, header_, item_, h, 2013 + h % 3,
                                     /*num_items=*/20, 1.0, &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
    for (int64_t h = 41; h <= 50; ++h) {
      ASSERT_OK(InsertBusinessObject(&db_, header_, item_, h, 2014,
                                     /*num_items=*/20, 1.0, &next_item_id_));
    }
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1;
};

TEST_F(SpanTreeTest, QueryTreeReconcilesWithQueryTrace) {
  AggregateCacheManager cache(&db_);
  ScopedGlobalSpans enable;

  // Warm the entry (records a build-flavored tree), then trace a hit.
  {
    Transaction txn = db_.Begin();
    auto warm = cache.Execute(HeaderItemQuery(), txn, ExecutionOptions());
    ASSERT_TRUE(warm.ok()) << warm.status();
  }
  uint64_t queries_before = SpanRecorder::Global().recorded_spans();
  QueryTrace trace;
  Transaction txn = db_.Begin();
  auto result =
      cache.ExecuteTraced(HeaderItemQuery(), txn, ExecutionOptions(), &trace);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(SpanRecorder::Global().recorded_spans(), queries_before);
  EXPECT_EQ(trace.cache_outcome, "hit");

  // The traced execution's tree is the one with the newest kQuery root.
  std::vector<SpanRecorder::Span> all = SpanRecorder::Global().Collect();
  const SpanRecorder::Span* root = nullptr;
  for (const SpanRecorder::Span& span : all) {
    if (span.kind == SpanKind::kQuery &&
        (root == nullptr || span.seq > root->seq)) {
      root = &span;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_STREQ(root->detail, "cached-full-pru")
      << "strategy label, truncated to the 15-byte detail budget";

  std::vector<SpanRecorder::Span> tree = SpansOfQuery(root->query_id);
  std::set<uint64_t> ids;
  for (const SpanRecorder::Span& span : tree) ids.insert(span.span_id);
  std::set<SpanKind> kinds;
  uint64_t direct_children_us = 0;
  for (const SpanRecorder::Span& span : tree) {
    kinds.insert(span.kind);
    if (span.span_id == root->span_id) continue;
    EXPECT_TRUE(ids.count(span.parent_id))
        << "span " << SpanKindToString(span.kind)
        << " parents outside its own tree";
    if (span.parent_id == root->span_id) {
      direct_children_us += span.dur_us;
      EXPECT_GE(span.start_us, root->start_us);
      EXPECT_LE(span.start_us + span.dur_us,
                root->start_us + root->dur_us + 1)
          << "child escapes the root interval";
    }
  }
  // A cache hit's lifecycle: admission, the lookup tile, then delta
  // compensation with its fan-out tasks.
  EXPECT_TRUE(kinds.count(SpanKind::kAdmissionWait));
  EXPECT_TRUE(kinds.count(SpanKind::kCacheLookup));
  EXPECT_TRUE(kinds.count(SpanKind::kDeltaCompensation));
  EXPECT_TRUE(kinds.count(SpanKind::kSubjoinTask));

  // Coverage: the root's direct children tile the execution; only glue
  // (stats plumbing, result move) is uncovered. Tolerate scheduler noise
  // but require the tree to explain most of the measured latency.
  EXPECT_GE(direct_children_us + 1,
            static_cast<uint64_t>(root->dur_us * 0.80))
      << "span tree explains too little of the query latency";
  // And the root must cover what the QueryTrace measured end-to-end
  // (the root starts before ExecuteInternal's total_watch).
  EXPECT_GE(static_cast<double>(root->dur_us) + 200.0,
            trace.total_ms * 1000.0);
}

TEST_F(SpanTreeTest, MissRecordsEntryBuildUnderLookup) {
  AggregateCacheManager cache(&db_);
  ScopedGlobalSpans enable;
  Transaction txn = db_.Begin();
  auto result = cache.Execute(HeaderItemQuery(), txn, ExecutionOptions());
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<SpanRecorder::Span> all = SpanRecorder::Global().Collect();
  const SpanRecorder::Span* root = nullptr;
  for (const SpanRecorder::Span& span : all) {
    if (span.kind == SpanKind::kQuery &&
        (root == nullptr || span.seq > root->seq)) {
      root = &span;
    }
  }
  ASSERT_NE(root, nullptr);
  std::map<SpanKind, const SpanRecorder::Span*> by_kind;
  for (const SpanRecorder::Span& span : all) {
    if (span.query_id == root->query_id) by_kind[span.kind] = &span;
  }
  ASSERT_TRUE(by_kind.count(SpanKind::kEntryBuild));
  ASSERT_TRUE(by_kind.count(SpanKind::kCacheLookup));
  EXPECT_EQ(by_kind[SpanKind::kEntryBuild]->parent_id,
            by_kind[SpanKind::kCacheLookup]->span_id)
      << "the build nests inside the lookup span";
}

}  // namespace
}  // namespace aggcache
