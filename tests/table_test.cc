#include "storage/table.h"

#include "gtest/gtest.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

using testing_util::CreateHeaderItemTables;

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateHeaderItemTables(&db_, &header_, &item_);
    ASSERT_NE(header_, nullptr);
    ASSERT_NE(item_, nullptr);
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
};

TEST_F(TableTest, InsertFillsOwnTid) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{1}), Value(int64_t{2013})}));
  auto loc = header_->FindByPk(Value(int64_t{1}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->kind, PartitionKind::kDelta);
  // Columns: HeaderID, FiscalYear, tid_Header.
  EXPECT_EQ(header_->ValueAt(*loc, 2),
            Value(static_cast<int64_t>(txn.tid())));
}

TEST_F(TableTest, InsertEnforcesMatchingDependency) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{7}), Value(int64_t{2014})}));
  ASSERT_OK(item_->Insert(
      txn, {Value(int64_t{100}), Value(int64_t{7}), Value(9.5)}));
  auto loc = item_->FindByPk(Value(int64_t{100}));
  ASSERT_TRUE(loc.has_value());
  // Columns: ItemID, HeaderID, tid_Header, Amount, tid_Item.
  EXPECT_EQ(item_->ValueAt(*loc, 2),
            Value(static_cast<int64_t>(txn.tid())));
  EXPECT_EQ(item_->ValueAt(*loc, 4),
            Value(static_cast<int64_t>(txn.tid())));
}

TEST_F(TableTest, MdTidDiffersWhenHeaderInsertedEarlier) {
  Transaction txn1 = db_.Begin();
  ASSERT_OK(header_->Insert(txn1, {Value(int64_t{1}), Value(int64_t{2010})}));
  Transaction txn2 = db_.Begin();
  ASSERT_OK(item_->Insert(
      txn2, {Value(int64_t{10}), Value(int64_t{1}), Value(1.0)}));
  auto loc = item_->FindByPk(Value(int64_t{10}));
  ASSERT_TRUE(loc.has_value());
  // tid_Header carries the header's (earlier) tid, not the item's.
  EXPECT_EQ(item_->ValueAt(*loc, 2),
            Value(static_cast<int64_t>(txn1.tid())));
  EXPECT_EQ(item_->ValueAt(*loc, 4),
            Value(static_cast<int64_t>(txn2.tid())));
}

TEST_F(TableTest, InsertRejectsForeignKeyViolation) {
  Transaction txn = db_.Begin();
  Status status = item_->Insert(
      txn, {Value(int64_t{1}), Value(int64_t{999}), Value(1.0)});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(item_->TotalRows(), 0u);
}

TEST_F(TableTest, InsertWithoutChecksSkipsLookup) {
  Transaction txn = db_.Begin();
  InsertOptions options;
  options.check_referential_integrity = false;
  options.maintain_tid_columns = false;
  ASSERT_OK(item_->Insert(
      txn, {Value(int64_t{1}), Value(int64_t{999}), Value(1.0)}, options));
  auto loc = item_->FindByPk(Value(int64_t{1}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(item_->ValueAt(*loc, 2), Value(int64_t{0}));  // Unset MD tid.
}

TEST_F(TableTest, InsertRejectsDuplicatePk) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{1}), Value(int64_t{2013})}));
  Status status =
      header_->Insert(txn, {Value(int64_t{1}), Value(int64_t{2014})});
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST_F(TableTest, InsertRejectsWrongArity) {
  Transaction txn = db_.Begin();
  EXPECT_FALSE(header_->Insert(txn, {Value(int64_t{1})}).ok());
  EXPECT_FALSE(
      header_
          ->Insert(txn, {Value(int64_t{1}), Value(int64_t{2}),
                         Value(int64_t{3})})
          .ok());
}

TEST_F(TableTest, UpdateInvalidatesOldVersionAndPreservesObjectTid) {
  Transaction txn1 = db_.Begin();
  ASSERT_OK(header_->Insert(txn1, {Value(int64_t{1}), Value(int64_t{2013})}));
  auto old_loc = *header_->FindByPk(Value(int64_t{1}));

  Transaction txn2 = db_.Begin();
  ASSERT_OK(header_->UpdateByPk(txn2, Value(int64_t{1}),
                                {Value(int64_t{1}), Value(int64_t{2014})}));
  // The old version is invalidated at txn2.
  const Partition& delta = header_->group(0).delta;
  EXPECT_EQ(delta.invalidate_tid(old_loc.row), txn2.tid());
  // The new version is found via the pk index and keeps the original tid.
  auto new_loc = *header_->FindByPk(Value(int64_t{1}));
  EXPECT_NE(new_loc.row, old_loc.row);
  EXPECT_EQ(header_->ValueAt(new_loc, 1), Value(int64_t{2014}));
  EXPECT_EQ(header_->ValueAt(new_loc, 2),
            Value(static_cast<int64_t>(txn1.tid())));
  // Physical rows: 2 (old invalidated + new); visible rows: 1.
  EXPECT_EQ(header_->TotalRows(), 2u);
  EXPECT_EQ(header_->VisibleRows(txn2.snapshot()), 1u);
  // The old snapshot still sees the old version.
  EXPECT_EQ(header_->VisibleRows(txn1.snapshot()), 1u);
}

TEST_F(TableTest, DeleteInvalidates) {
  Transaction txn1 = db_.Begin();
  ASSERT_OK(header_->Insert(txn1, {Value(int64_t{1}), Value(int64_t{2013})}));
  Transaction txn2 = db_.Begin();
  ASSERT_OK(header_->DeleteByPk(txn2, Value(int64_t{1})));
  EXPECT_FALSE(header_->FindByPk(Value(int64_t{1})).has_value());
  EXPECT_EQ(header_->VisibleRows(txn2.snapshot()), 0u);
  EXPECT_EQ(header_->VisibleRows(txn1.snapshot()), 1u);
  // Deleting again fails.
  EXPECT_EQ(header_->DeleteByPk(txn2, Value(int64_t{1})).code(),
            StatusCode::kNotFound);
}

TEST_F(TableTest, UpdateMissingRowFails) {
  Transaction txn = db_.Begin();
  EXPECT_EQ(header_
                ->UpdateByPk(txn, Value(int64_t{5}),
                             {Value(int64_t{5}), Value(int64_t{2000})})
                .code(),
            StatusCode::kNotFound);
}

TEST_F(TableTest, MainInvalidationCountTracksMainOnly) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{1}), Value(int64_t{2013})}));
  ASSERT_OK(db_.Merge("Header"));
  EXPECT_EQ(header_->MainInvalidationCount(), 0u);
  Transaction txn2 = db_.Begin();
  ASSERT_OK(header_->DeleteByPk(txn2, Value(int64_t{1})));
  EXPECT_EQ(header_->MainInvalidationCount(), 1u);
}

TEST_F(TableTest, ForeignKeyToMissingTableRejectedAtCreate) {
  Database db;
  auto result = db.CreateTable(SchemaBuilder("Orphan")
                                   .AddColumn("id", ColumnType::kInt64)
                                   .PrimaryKey()
                                   .AddColumn("ref", ColumnType::kInt64)
                                   .References("Nowhere")
                                   .Build());
  EXPECT_FALSE(result.ok());
}

TEST_F(TableTest, MdRequiresRefOwnTid) {
  Database db;
  auto no_tid = db.CreateTable(SchemaBuilder("Plain")
                                   .AddColumn("id", ColumnType::kInt64)
                                   .PrimaryKey()
                                   .Build());
  ASSERT_TRUE(no_tid.ok());
  auto result = db.CreateTable(SchemaBuilder("Child")
                                   .AddColumn("id", ColumnType::kInt64)
                                   .PrimaryKey()
                                   .AddColumn("ref", ColumnType::kInt64)
                                   .References("Plain", "tid_Plain")
                                   .Build());
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace aggcache
