#include "storage/recovery.h"

#include <filesystem>
#include <optional>

#include "cache/aggregate_cache_manager.h"
#include "gtest/gtest.h"
#include "obs/engine_metrics.h"
#include "obs/metrics_registry.h"
#include "storage/merge_daemon.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

/// Each test gets its own durable directory under the build tree and drives
/// full engine lifecycles through it: open → mutate → (crash | clean close)
/// → reopen into a fresh Database, asserting the recovered state.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path("recovery_test_data") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  /// Opens `dir_` into a fresh engine generation, replacing the previous
  /// one. Returns the recovery report of the open.
  const RecoveryReport& Reopen(WalSyncPolicy policy = WalSyncPolicy::kSync) {
    durability_.reset();
    db_ = std::make_unique<Database>();
    DurabilityOptions options;
    options.wal_policy = policy;
    auto opened = DurabilityManager::Open(dir_.string(), db_.get(), options);
    AGGCACHE_CHECK(opened.ok()) << opened.status();
    durability_ = std::move(opened).value();
    return durability_->recovery_report();
  }

  /// Simulates a kill: nothing unwritten survives, locks release.
  void Crash() { durability_->SimulateCrash(); }

  /// Clean shutdown: the destructor closes the WAL after its last sync.
  void Close() {
    durability_.reset();
    db_.reset();
  }

  Table* GetTable(const std::string& name) {
    auto table_or = db_->GetTable(name);
    AGGCACHE_CHECK(table_or.ok()) << table_or.status();
    return table_or.value();
  }

  size_t Visible(const std::string& table) {
    return GetTable(table)->VisibleRows(db_->txn_manager().GlobalSnapshot());
  }

  /// Creates the canonical Header/Item MD schema (unless a recovered
  /// generation already has it) and inserts `n` more business objects of 2
  /// items each through atomic write scopes.
  void PopulateHeaderItem(size_t n) {
    Table* header = nullptr;
    Table* item = nullptr;
    if (db_->GetTable("Header").ok()) {
      header = GetTable("Header");
      item = GetTable("Item");
    } else {
      testing_util::CreateHeaderItemTables(db_.get(), &header, &item);
    }
    for (size_t i = 0; i < n; ++i) {
      int64_t h = next_header_id_++;
      ASSERT_OK(testing_util::InsertBusinessObject(
          db_.get(), header, item, h, 2010 + h % 3, 2, 1.5, &next_item_id_));
    }
  }

  std::filesystem::path dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<DurabilityManager> durability_;
  int64_t next_header_id_ = 1;
  int64_t next_item_id_ = 1;
};

TEST_F(RecoveryTest, EmptyDirectoryOpensEmpty) {
  const RecoveryReport& report = Reopen();
  EXPECT_FALSE(report.checkpoint_loaded);
  EXPECT_EQ(report.wal_records, 0u);
  EXPECT_TRUE(report.wal_clean);
  EXPECT_TRUE(db_->TableNames().empty());
}

TEST_F(RecoveryTest, OpenRejectsNonEmptyDatabase) {
  auto db = std::make_unique<Database>();
  Table* header = nullptr;
  Table* item = nullptr;
  testing_util::CreateHeaderItemTables(db.get(), &header, &item);
  auto opened =
      DurabilityManager::Open(dir_.string(), db.get(), DurabilityOptions());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, WalOnlyReplayRestoresDataAndTids) {
  Reopen();
  PopulateHeaderItem(5);
  Tid last = db_->txn_manager().last_committed();
  Crash();

  const RecoveryReport& report = Reopen();
  EXPECT_FALSE(report.checkpoint_loaded);
  EXPECT_GT(report.replayed_records, 0u);
  EXPECT_EQ(report.discarded_records, 0u);
  EXPECT_EQ(Visible("Header"), 5u);
  EXPECT_EQ(Visible("Item"), 10u);
  // The tid counter continues where the dead process stopped: snapshots
  // taken before and after the restart order identically.
  EXPECT_EQ(db_->txn_manager().last_committed(), last);
}

TEST_F(RecoveryTest, UpdatesAndDeletesReplay) {
  Reopen();
  PopulateHeaderItem(4);
  Table* header = GetTable("Header");
  {
    Transaction txn = db_->Begin();
    ASSERT_OK(header->DeleteByPk(txn, Value(int64_t{2})));
  }
  {
    Transaction txn = db_->Begin();
    ASSERT_OK(header->UpdateByPk(txn, Value(int64_t{3}),
                                 {Value(int64_t{3}), Value(int64_t{2099})}));
  }
  Crash();

  Reopen();
  EXPECT_EQ(Visible("Header"), 3u);
  Table* restored = GetTable("Header");
  EXPECT_FALSE(restored->FindByPk(Value(int64_t{2})).has_value());
  EXPECT_TRUE(restored->FindByPk(Value(int64_t{3})).has_value());
}

TEST_F(RecoveryTest, CheckpointOnlyRestart) {
  Reopen();
  PopulateHeaderItem(5);
  ASSERT_OK(db_->MergeAll());  // The segment captures post-merge layout.
  ASSERT_OK_AND_ASSIGN(bool published, durability_->Checkpoint());
  EXPECT_TRUE(published);
  Crash();

  const RecoveryReport& report = Reopen();
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(report.replayed_records, 0u);
  EXPECT_EQ(Visible("Header"), 5u);
  EXPECT_EQ(Visible("Item"), 10u);
  // The merge's physical layout is part of the checkpoint image.
  EXPECT_EQ(GetTable("Header")->group(0).main.num_rows(), 5u);
  EXPECT_TRUE(GetTable("Header")->group(0).delta.empty());
}

TEST_F(RecoveryTest, CheckpointPlusWalTailComposes) {
  Reopen();
  PopulateHeaderItem(3);
  ASSERT_OK_AND_ASSIGN(bool published, durability_->Checkpoint());
  EXPECT_TRUE(published);
  PopulateHeaderItem(2);  // Tail beyond the checkpoint.
  Crash();

  const RecoveryReport& report = Reopen();
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_GT(report.replayed_records, 0u);
  EXPECT_EQ(Visible("Header"), 5u);
  EXPECT_EQ(Visible("Item"), 10u);
}

TEST_F(RecoveryTest, UncommittedScopeRolledBack) {
  Reopen();
  PopulateHeaderItem(2);
  Table* header = GetTable("Header");
  Table* item = GetTable("Item");
  auto scope = std::make_optional<ScopedTransaction>(db_->BeginAtomic());
  ASSERT_OK(header->Insert(*scope, {Value(int64_t{77}), Value(int64_t{2020})}));
  ASSERT_OK(
      item->Insert(*scope, {Value(int64_t{770}), Value(int64_t{77}),
                            Value(3.5)}));
  Crash();  // The scope never commits: its records must be discarded.
  scope.reset();

  const RecoveryReport& report = Reopen();
  EXPECT_EQ(report.discarded_scopes, 1u);
  EXPECT_GT(report.discarded_records, 0u);
  EXPECT_EQ(Visible("Header"), 2u);
  EXPECT_EQ(Visible("Item"), 4u);
  EXPECT_FALSE(GetTable("Header")->FindByPk(Value(int64_t{77})).has_value());
}

TEST_F(RecoveryTest, SplitAndAgingGroupReplay) {
  Reopen();
  PopulateHeaderItem(6);
  ASSERT_OK(db_->MergeAll());
  ASSERT_OK(GetTable("Header")->SplitHotCold("HeaderID", Value(int64_t{4})));
  ASSERT_OK(GetTable("Item")->SplitHotCold("HeaderID", Value(int64_t{4})));
  db_->RegisterAgingGroup({"Header", "Item"});
  db_->RegisterMergeGroup({"Header", "Item"}, 128);
  Crash();

  Reopen();
  EXPECT_EQ(GetTable("Header")->num_groups(), 2u);
  EXPECT_EQ(GetTable("Item")->num_groups(), 2u);
  ASSERT_EQ(db_->aging_groups().size(), 1u);
  EXPECT_EQ(db_->aging_groups()[0],
            (std::vector<std::string>{"Header", "Item"}));
  ASSERT_EQ(db_->merge_groups().size(), 1u);
  EXPECT_EQ(db_->merge_groups()[0].second, 128u);
  EXPECT_EQ(Visible("Header"), 6u);
}

TEST_F(RecoveryTest, LsnContinuityAcrossGenerations) {
  Reopen();
  PopulateHeaderItem(2);
  Crash();

  Reopen();
  Table* header = GetTable("Header");
  {
    Transaction txn = db_->Begin();
    ASSERT_OK(
        header->Insert(txn, {Value(int64_t{100}), Value(int64_t{2021})}));
  }
  Crash();

  const RecoveryReport& report = Reopen();
  EXPECT_TRUE(report.wal_clean) << report.wal_tail_error;
  EXPECT_EQ(Visible("Header"), 3u);
  EXPECT_TRUE(GetTable("Header")->FindByPk(Value(int64_t{100})).has_value());
}

TEST_F(RecoveryTest, QueriesAgreeAfterRecovery) {
  Reopen();
  PopulateHeaderItem(8);
  ASSERT_OK(db_->Merge("Header"));
  ASSERT_OK_AND_ASSIGN(bool published, durability_->Checkpoint());
  EXPECT_TRUE(published);
  PopulateHeaderItem(3);
  {
    Transaction txn = db_->Begin();
    ASSERT_OK(GetTable("Header")->DeleteByPk(txn, Value(int64_t{1})));
  }
  Crash();

  Reopen();
  AggregateCacheManager cache(db_.get(), AggregateCacheManager::Config());
  testing_util::ExpectAllStrategiesAgree(db_.get(), &cache,
                                         testing_util::HeaderItemQuery());
}

TEST_F(RecoveryTest, AsyncPolicySurvivesKill) {
  Reopen(WalSyncPolicy::kAsync);
  PopulateHeaderItem(4);
  Crash();  // Async writes reach the fd immediately; only the fsync lags.

  const RecoveryReport& report = Reopen(WalSyncPolicy::kAsync);
  EXPECT_TRUE(report.wal_clean) << report.wal_tail_error;
  EXPECT_EQ(Visible("Header"), 4u);
  EXPECT_EQ(Visible("Item"), 8u);
}

TEST_F(RecoveryTest, WarmDescriptorsReAdmitAcrossRestart) {
  uint64_t warm_before =
      EngineMetrics::Get().recovery_warm_admissions->Value();
  Reopen();
  PopulateHeaderItem(5);
  AggregateQuery query = testing_util::HeaderItemQuery();
  {
    AggregateCacheManager cache(db_.get(), AggregateCacheManager::Config());
    durability_->SetDescriptorSource(&cache);
    Transaction txn = db_->Begin();
    ASSERT_OK(cache.Execute(query, txn, ExecutionOptions()).status());
    ASSERT_OK(cache.Execute(query, txn, ExecutionOptions()).status());
    EXPECT_EQ(cache.ExportCacheDescriptors().size(), 1u);
    ASSERT_OK_AND_ASSIGN(bool published, durability_->Checkpoint());
    EXPECT_TRUE(published);
    durability_->SetDescriptorSource(nullptr);
  }
  Crash();

  const RecoveryReport& report = Reopen();
  EXPECT_EQ(report.warm_descriptors, 1u);
  // The restarted node sets an admission bar the rebuilt entry would fail
  // on cost alone — the warm descriptor must bypass it.
  AggregateCacheManager::Config config;
  config.min_main_exec_ms = 1e9;
  AggregateCacheManager cache(db_.get(), config);
  cache.ImportWarmDescriptors(durability_->TakeWarmDescriptors());
  EXPECT_EQ(cache.warm_descriptors_pending(), 1u);
  Transaction txn = db_->Begin();
  ASSERT_OK(cache.Execute(query, txn, ExecutionOptions()).status());
  EXPECT_EQ(cache.warm_descriptors_pending(), 0u);
  EXPECT_EQ(cache.ExportCacheDescriptors().size(), 1u);
  EXPECT_EQ(EngineMetrics::Get().recovery_warm_admissions->Value(),
            warm_before + 1);
  // A cold entry with the same config is still rejected by the bar.
  AggregateCacheManager cold(db_.get(), config);
  Transaction txn2 = db_->Begin();
  ASSERT_OK(cold.Execute(query, txn2, ExecutionOptions()).status());
  EXPECT_TRUE(cold.ExportCacheDescriptors().empty());
}

TEST_F(RecoveryTest, SecondOpenOfLiveDirectoryFailsLoudly) {
  Reopen();
  auto second = std::make_unique<Database>();
  auto opened = DurabilityManager::Open(dir_.string(), second.get(),
                                        DurabilityOptions());
  ASSERT_FALSE(opened.ok());
  // Releasing the first owner makes the directory openable again.
  Close();
  auto third = std::make_unique<Database>();
  auto reopened = DurabilityManager::Open(dir_.string(), third.get(),
                                          DurabilityOptions());
  EXPECT_TRUE(reopened.ok()) << reopened.status();
}

TEST_F(RecoveryTest, MergeDaemonRefusesToStartDuringRestore) {
  Database db;
  db.set_restoring(true);
  MergeDaemon daemon(db);
  EXPECT_DEATH(daemon.Start(), "recovery");
}

TEST_F(RecoveryTest, MetricsDumperBlockedDuringRestore) {
  EXPECT_DEATH(
      {
        MetricsDumper::BlockStarts(true);
        MetricsDumper::MaybeStartFromEnv();
      },
      "recovery");
}

}  // namespace
}  // namespace aggcache
