// Tests for the observability HTTP server (src/obs/obs_server.h), driven
// through a raw TCP client — no HTTP library on either side, which is
// exactly how curl and a Prometheus scraper exercise it. Covers the
// byte-identity contract between GET /metrics and MetricsRegistry::Render,
// the health probe's status codes, and the rejection paths (400/404/405,
// port-in-use Start failure).

#include "obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <utility>

#include "gtest/gtest.h"
#include "obs/metrics_registry.h"

namespace aggcache {
namespace {

/// One round-trip: connect, send `request` verbatim, read to EOF (the
/// server closes after each response).
std::string RawRequest(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "<socket failed>";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "<connect failed>";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    // MSG_NOSIGNAL: the server may legitimately close mid-send (oversized
    // request → 400 + close); that must surface as an error, not SIGPIPE.
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\n"
                          "Host: localhost\r\nConnection: close\r\n\r\n");
}

/// The body after the blank line separating headers from payload.
std::string Body(const std::string& response) {
  size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? "" : response.substr(sep + 4);
}

std::string StatusOf(const std::string& response) {
  size_t eol = response.find("\r\n");
  return eol == std::string::npos ? response : response.substr(0, eol);
}

class ObsServerTest : public ::testing::Test {
 protected:
  void TearDown() override { server_.Stop(); }

  Status StartServer() {
    server_.SetHandler("/metrics", "text/plain; version=0.0.4",
                       [] { return MetricsRegistry::Global().Render(); });
    server_.SetHandler("/ping", "text/plain", [] { return "pong\n"; });
    server_.SetQueryHandler(
        "/echo", "text/plain",
        [](const std::string& query) -> std::pair<int, std::string> {
          if (query.empty()) return {400, "missing query\n"};
          return {200, "query=" + query + "\n"};
        });
    server_.SetHealthProbe([this]() -> std::pair<int, std::string> {
      if (healthy_.load()) return {200, "ok\n"};
      return {503, "degraded\n"};
    });
    ObsServer::Options options;
    options.address = "127.0.0.1:0";
    return server_.Start(options);
  }

  ObsServer server_;
  std::atomic<bool> healthy_{true};
};

TEST_F(ObsServerTest, MetricsBodyIsByteIdenticalToRender) {
  ASSERT_TRUE(StartServer().ok());
  ASSERT_NE(server_.port(), 0);
  std::string response = Get(server_.port(), "/metrics");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 200 OK");
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << response.substr(0, 200);
  // The contract CI keys on: scraping over HTTP must see exactly what the
  // in-process renderer produces. (Metrics are monotone counters that other
  // threads could bump mid-test, so render, fetch, render and accept either
  // endpoint of the window — in this binary nothing runs concurrently, and
  // the two renders are equal.)
  std::string before = MetricsRegistry::Global().Render();
  std::string body = Body(Get(server_.port(), "/metrics"));
  std::string after = MetricsRegistry::Global().Render();
  EXPECT_TRUE(body == before || body == after)
      << "HTTP body diverges from MetricsRegistry::Render";
  // Content-Length must match the body exactly (curl trusts it).
  std::string full = Get(server_.port(), "/metrics");
  std::string length_key = "Content-Length: ";
  size_t at = full.find(length_key);
  ASSERT_NE(at, std::string::npos);
  size_t declared = std::strtoul(full.c_str() + at + length_key.size(),
                                 nullptr, 10);
  EXPECT_EQ(Body(full).size(), declared);
}

TEST_F(ObsServerTest, HealthzFollowsProbe) {
  ASSERT_TRUE(StartServer().ok());
  std::string response = Get(server_.port(), "/healthz");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(Body(response), "ok\n");

  healthy_.store(false);
  response = Get(server_.port(), "/healthz");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 503 Service Unavailable");
  EXPECT_EQ(Body(response), "degraded\n");
}

TEST_F(ObsServerTest, QueryStringIsStripped) {
  ASSERT_TRUE(StartServer().ok());
  std::string response = Get(server_.port(), "/ping?x=1&y=2");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(Body(response), "pong\n");
}

TEST_F(ObsServerTest, UnknownPathIs404) {
  ASSERT_TRUE(StartServer().ok());
  EXPECT_EQ(StatusOf(Get(server_.port(), "/nope")),
            "HTTP/1.1 404 Not Found");
}

TEST_F(ObsServerTest, NonGetIs405) {
  ASSERT_TRUE(StartServer().ok());
  std::string response = RawRequest(
      server_.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 405 Method Not Allowed");
}

TEST_F(ObsServerTest, MalformedRequestLinesGet400) {
  ASSERT_TRUE(StartServer().ok());
  EXPECT_EQ(StatusOf(RawRequest(server_.port(), "garbage\r\n\r\n")),
            "HTTP/1.1 400 Bad Request");
  EXPECT_EQ(StatusOf(RawRequest(server_.port(), "GET /metrics\r\n\r\n")),
            "HTTP/1.1 400 Bad Request")
      << "missing HTTP version";
  // An over-long request line is rejected, not buffered without bound.
  std::string oversized = "GET /" + std::string(8192, 'a') + " HTTP/1.1\r\n";
  EXPECT_EQ(StatusOf(RawRequest(server_.port(), oversized)),
            "HTTP/1.1 400 Bad Request");
}

TEST_F(ObsServerTest, ClientClosingEarlyDoesNotWedgeTheServer) {
  ASSERT_TRUE(StartServer().ok());
  // Connect and slam the connection shut with no request; the server must
  // keep serving afterwards.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);
  EXPECT_EQ(StatusOf(Get(server_.port(), "/ping")), "HTTP/1.1 200 OK");
}

TEST_F(ObsServerTest, PortInUseFailsLoudly) {
  ASSERT_TRUE(StartServer().ok());
  ObsServer second;
  second.SetHandler("/metrics", "text/plain", [] { return ""; });
  ObsServer::Options options;
  options.address = "127.0.0.1:" + std::to_string(server_.port());
  Status started = second.Start(options);
  EXPECT_FALSE(started.ok()) << "a silently dead port must not pass Start";
  EXPECT_FALSE(second.running());
}

TEST_F(ObsServerTest, BadAddressesAreRejected) {
  ObsServer server;
  server.SetHandler("/x", "text/plain", [] { return ""; });
  for (const char* address : {"no-port", "127.0.0.1:notaport", ":"}) {
    ObsServer::Options options;
    options.address = address;
    EXPECT_FALSE(server.Start(options).ok()) << address;
  }
}

TEST_F(ObsServerTest, StopIsIdempotentAndRestartable) {
  ASSERT_TRUE(StartServer().ok());
  uint16_t port = server_.port();
  EXPECT_TRUE(server_.running());
  server_.Stop();
  server_.Stop();
  EXPECT_FALSE(server_.running());
  // The port is free again: a fresh server can bind it immediately (the
  // listener was closed, not leaked).
  ObsServer next;
  next.SetHandler("/ping", "text/plain", [] { return "pong\n"; });
  ObsServer::Options options;
  options.address = "127.0.0.1:" + std::to_string(port);
  ASSERT_TRUE(next.Start(options).ok());
  EXPECT_EQ(Body(Get(next.port(), "/ping")), "pong\n");
  next.Stop();
}

TEST_F(ObsServerTest, HeadReturnsHeadersWithoutBody) {
  ASSERT_TRUE(StartServer().ok());
  std::string response = RawRequest(
      server_.port(),
      "HEAD /ping HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 200 OK");
  // Content-Length advertises what GET would return, but no body follows.
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos)
      << response;
  EXPECT_EQ(Body(response), "");
  // /healthz answers HEAD too (what load-balancer probes send).
  response = RawRequest(
      server_.port(),
      "HEAD /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(Body(response), "");
}

TEST_F(ObsServerTest, RootServesEndpointIndex) {
  ASSERT_TRUE(StartServer().ok());
  std::string response = Get(server_.port(), "/");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 200 OK");
  std::string body = Body(response);
  EXPECT_NE(body.find("/healthz"), std::string::npos) << body;
  EXPECT_NE(body.find("/metrics"), std::string::npos) << body;
  EXPECT_NE(body.find("/ping"), std::string::npos) << body;
  // Parameterized endpoints are marked as such.
  EXPECT_NE(body.find("/echo?..."), std::string::npos) << body;
}

TEST_F(ObsServerTest, QueryHandlerReceivesQueryStringAndPicksStatus) {
  ASSERT_TRUE(StartServer().ok());
  std::string response = Get(server_.port(), "/echo?id=42");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(Body(response), "query=id=42\n");
  // The handler's error status propagates to the HTTP layer.
  response = Get(server_.port(), "/echo");
  EXPECT_EQ(StatusOf(response), "HTTP/1.1 400 Bad Request");
  EXPECT_EQ(Body(response), "missing query\n");
}

}  // namespace
}  // namespace aggcache
