#include "objectaware/join_pruning.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class JoinPruningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
  }

  void LoadAndMerge(int64_t num_objects) {
    for (int64_t h = 1; h <= num_objects; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2013, 2, 1.0, &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  }

  BoundQuery Bind() {
    auto bound = BoundQuery::Bind(db_, query_);
    AGGCACHE_CHECK(bound.ok());
    return std::move(bound).value();
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1;
  AggregateQuery query_ = testing_util::HeaderItemQuery();
};

TEST_F(JoinPruningTest, LevelNoneNeverPrunes) {
  LoadAndMerge(3);
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  JoinPruner pruner(&db_, PruneLevel::kNone);
  for (const SubjoinCombination& combo :
       EnumerateCompensationCombinations(bound.tables)) {
    EXPECT_FALSE(pruner.ShouldPrune(bound, mds, combo).pruned);
  }
  EXPECT_EQ(pruner.stats().total_pruned(), 0u);
}

TEST_F(JoinPruningTest, EmptyPartitionPruning) {
  LoadAndMerge(3);  // Deltas now empty.
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  JoinPruner pruner(&db_, PruneLevel::kEmptyPartitions);
  // All three compensation combos involve an empty delta.
  for (const SubjoinCombination& combo :
       EnumerateCompensationCombinations(bound.tables)) {
    PruneDecision decision = pruner.ShouldPrune(bound, mds, combo);
    EXPECT_TRUE(decision.pruned);
    EXPECT_EQ(decision.reason, "empty-partition");
  }
  EXPECT_EQ(pruner.stats().pruned_empty, 3u);
}

TEST_F(JoinPruningTest, TidRangePruningAfterTransactionalInserts) {
  LoadAndMerge(5);
  // New business objects: matching rows are all in the deltas.
  for (int64_t h = 6; h <= 8; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, h,
                                                 2013, 2, 1.0,
                                                 &next_item_id_));
  }
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  JoinPruner pruner(&db_, PruneLevel::kFull);

  SubjoinCombination main_delta = {{0, PartitionKind::kMain},
                                   {0, PartitionKind::kDelta}};
  SubjoinCombination delta_main = {{0, PartitionKind::kDelta},
                                   {0, PartitionKind::kMain}};
  SubjoinCombination delta_delta = {{0, PartitionKind::kDelta},
                                    {0, PartitionKind::kDelta}};
  EXPECT_TRUE(pruner.ShouldPrune(bound, mds, main_delta).pruned);
  EXPECT_EQ(pruner.ShouldPrune(bound, mds, main_delta).reason, "tid-range");
  EXPECT_TRUE(pruner.ShouldPrune(bound, mds, delta_main).pruned);
  // delta x delta contains the matches and must not be pruned.
  EXPECT_FALSE(pruner.ShouldPrune(bound, mds, delta_delta).pruned);
}

TEST_F(JoinPruningTest, LateItemPreventsPruning) {
  LoadAndMerge(5);
  // A late item referencing a merged header: Header_main x Item_delta is
  // now non-empty and the tid ranges overlap.
  Transaction txn = db_.Begin();
  ASSERT_OK(item_->Insert(
      txn, {Value(next_item_id_++), Value(int64_t{2}), Value(1.0)}));
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  JoinPruner pruner(&db_, PruneLevel::kFull);
  SubjoinCombination main_delta = {{0, PartitionKind::kMain},
                                   {0, PartitionKind::kDelta}};
  EXPECT_FALSE(pruner.ShouldPrune(bound, mds, main_delta).pruned);
  // The reverse side stays prunable: Header_delta is empty.
  SubjoinCombination delta_main = {{0, PartitionKind::kDelta},
                                   {0, PartitionKind::kMain}};
  EXPECT_TRUE(pruner.ShouldPrune(bound, mds, delta_main).pruned);
}

TEST_F(JoinPruningTest, PaperFigure5Scenario) {
  // Reproduce Fig. 5: header merged before item would leave matching
  // tuples split across Header_main/Item_delta... here we emulate the
  // asymmetric state by merging only the Header table.
  LoadAndMerge(3);
  for (int64_t h = 4; h <= 5; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, h,
                                                 2013, 2, 1.0,
                                                 &next_item_id_));
  }
  ASSERT_OK(db_.Merge("Header"));  // Item delta still holds items 4..5.
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  JoinPruner pruner(&db_, PruneLevel::kFull);
  // Header_main x Item_delta cannot be pruned: the merged headers 4,5 match
  // delta items.
  SubjoinCombination main_delta = {{0, PartitionKind::kMain},
                                   {0, PartitionKind::kDelta}};
  EXPECT_FALSE(pruner.ShouldPrune(bound, mds, main_delta).pruned);
  // Header_delta is empty -> prunable.
  SubjoinCombination delta_main = {{0, PartitionKind::kDelta},
                                   {0, PartitionKind::kMain}};
  EXPECT_TRUE(pruner.ShouldPrune(bound, mds, delta_main).pruned);
}

TEST_F(JoinPruningTest, PrunedSubjoinsAreActuallyEmpty) {
  // Soundness: every pruned combination, when executed anyway, yields an
  // empty result. Exercise a mixed state: merge, add objects, add a late
  // item, merge one table only.
  LoadAndMerge(4);
  for (int64_t h = 5; h <= 7; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, h,
                                                 2013, 2, 1.0,
                                                 &next_item_id_));
  }
  Transaction txn = db_.Begin();
  ASSERT_OK(item_->Insert(
      txn, {Value(next_item_id_++), Value(int64_t{1}), Value(1.0)}));
  ASSERT_OK(db_.Merge("Item"));

  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  JoinPruner pruner(&db_, PruneLevel::kFull);
  Executor executor(&db_);
  Snapshot now = db_.txn_manager().GlobalSnapshot();
  size_t pruned = 0;
  for (const SubjoinCombination& combo :
       EnumerateAllCombinations(bound.tables)) {
    if (!pruner.ShouldPrune(bound, mds, combo).pruned) continue;
    ++pruned;
    auto result = executor.ExecuteSubjoin(bound, combo, now);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty()) << CombinationToString(combo);
  }
  EXPECT_GT(pruned, 0u);
}

TEST_F(JoinPruningTest, AgingGroupPruning) {
  LoadAndMerge(10);
  ASSERT_OK(header_->SplitHotCold("HeaderID", Value(int64_t{6})));
  ASSERT_OK(item_->SplitHotCold("HeaderID", Value(int64_t{6})));
  db_.RegisterAgingGroup({"Header", "Item"});
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  JoinPruner pruner(&db_, PruneLevel::kFull);
  // Hot header main x cold item main: logically pruned via aging group.
  SubjoinCombination cross = {{0, PartitionKind::kMain},
                              {1, PartitionKind::kMain}};
  PruneDecision decision = pruner.ShouldPrune(bound, mds, cross);
  EXPECT_TRUE(decision.pruned);
  EXPECT_EQ(decision.reason, "aging-group");
  // Same temperature not pruned by rule 2 (and not by tid ranges, since
  // matching rows live there).
  SubjoinCombination hot_hot = {{0, PartitionKind::kMain},
                                {0, PartitionKind::kMain}};
  EXPECT_FALSE(pruner.ShouldPrune(bound, mds, hot_hot).pruned);
}

TEST_F(JoinPruningTest, NoAgingGroupNoLogicalPruning) {
  LoadAndMerge(10);
  ASSERT_OK(header_->SplitHotCold("HeaderID", Value(int64_t{6})));
  ASSERT_OK(item_->SplitHotCold("HeaderID", Value(int64_t{6})));
  // No RegisterAgingGroup: rule 2 must not fire; tid ranges still prune
  // cross-temperature mains because the split is tid-correlated here.
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  JoinPruner pruner(&db_, PruneLevel::kFull);
  SubjoinCombination cross = {{0, PartitionKind::kMain},
                              {1, PartitionKind::kMain}};
  PruneDecision decision = pruner.ShouldPrune(bound, mds, cross);
  EXPECT_TRUE(decision.pruned);
  EXPECT_EQ(decision.reason, "tid-range");
}

TEST_F(JoinPruningTest, TidRangesDisjointHelper) {
  LoadAndMerge(2);
  const Partition& main = header_->group(0).main;
  const Partition& delta = header_->group(0).delta;
  // Empty delta: disjoint by definition.
  EXPECT_TRUE(TidRangesDisjoint(main, 2, delta, 2));
  EXPECT_TRUE(TidRangesDisjoint(delta, 2, main, 2));
  // A partition is never disjoint with itself when non-empty.
  EXPECT_FALSE(TidRangesDisjoint(main, 2, main, 2));
}

TEST_F(JoinPruningTest, LevelNames) {
  EXPECT_STREQ(PruneLevelToString(PruneLevel::kNone), "none");
  EXPECT_STREQ(PruneLevelToString(PruneLevel::kEmptyPartitions),
               "empty-partitions");
  EXPECT_STREQ(PruneLevelToString(PruneLevel::kFull), "full");
}

}  // namespace
}  // namespace aggcache
