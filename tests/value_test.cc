#include "common/value.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int64());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(std::string("xyz")).AsString(), "xyz");
}

TEST(ValueTest, TypeClassification) {
  EXPECT_EQ(Value(int64_t{1}).type(), ColumnType::kInt64);
  EXPECT_EQ(Value(1.0).type(), ColumnType::kDouble);
  EXPECT_EQ(Value("s").type(), ColumnType::kString);
  EXPECT_TRUE(Value(int64_t{1}).MatchesType(ColumnType::kInt64));
  EXPECT_FALSE(Value(int64_t{1}).MatchesType(ColumnType::kDouble));
  EXPECT_FALSE(Value().MatchesType(ColumnType::kInt64));
}

TEST(ValueTest, NumericAsDouble) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).NumericAsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).NumericAsDouble(), 2.5);
}

TEST(ValueTest, EqualityIsTypeSensitive) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // Different variants.
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.5), Value(2.5));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_FALSE(Value(int64_t{2}) < Value(int64_t{2}));
  EXPECT_TRUE(Value(int64_t{2}) <= Value(int64_t{2}));
  EXPECT_TRUE(Value(int64_t{3}) > Value(int64_t{2}));
  EXPECT_TRUE(Value(int64_t{3}) >= Value(int64_t{3}));
}

TEST(ValueTest, OrderingAcrossTypes) {
  // NULL < numeric < string; int64 and double compare numerically.
  EXPECT_LT(Value(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{5}), Value("a"));
  EXPECT_LT(Value(int64_t{1}), Value(1.5));
  EXPECT_LT(Value(0.5), Value(int64_t{1}));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{9}).Hash(), Value(int64_t{9}).Hash());
  EXPECT_EQ(Value("k").Hash(), Value("k").Hash());
  // Different variants with the same numeric value hash differently (they
  // are unequal).
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, UsableInUnorderedSet) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(int64_t{1}));
  set.insert(Value(int64_t{1}));
  set.insert(Value("one"));
  set.insert(Value());
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(Value(int64_t{1})));
  EXPECT_TRUE(set.contains(Value("one")));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, ByteSizeCountsStringHeap) {
  EXPECT_GE(Value(std::string(100, 'x')).ByteSize(),
            sizeof(Value) + 100);
  EXPECT_EQ(Value(int64_t{1}).ByteSize(), sizeof(Value));
}

TEST(ColumnTypeTest, Names) {
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kInt64), "int64");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kDouble), "double");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kString), "string");
}

}  // namespace
}  // namespace aggcache
