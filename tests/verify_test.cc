// gtest entry points for the differential correctness harness
// (src/verify/): fault injector semantics, oracle-vs-engine agreement,
// fuzz-seed smoke runs, self-test of the divergence reporting pipeline,
// and replayability of emitted traces.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "verify/fault_injector.h"
#include "verify/fuzzer.h"
#include "verify/oracle.h"
#include "workload/trace.h"

namespace aggcache {
namespace {

using testing_util::CreateHeaderItemTables;
using testing_util::HeaderItemQuery;
using testing_util::InsertBusinessObject;

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().ResetCounters();
  }
};

TEST_F(FaultInjectorTest, UnarmedPointNeverFails) {
  EXPECT_OK(FaultInjector::Global().MaybeFail("maintenance.bind"));
  EXPECT_FALSE(FaultInjector::Global().AnyArmed());
}

TEST_F(FaultInjectorTest, ArmedPointFailsWithTaggedStatus) {
  FaultInjector::Global().Arm("maintenance.bind", {/*probability=*/1.0});
  Status status = FaultInjector::Global().MaybeFail("maintenance.bind");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(FaultInjector::IsInjectedFault(status)) << status.ToString();
  // Other points stay unaffected.
  EXPECT_OK(FaultInjector::Global().MaybeFail("maintenance.fold"));
}

TEST_F(FaultInjectorTest, MaxFiresCapsFailures) {
  FaultInjector::PointConfig config;
  config.probability = 1.0;
  config.max_fires = 2;
  FaultInjector::Global().Arm("storage.merge", config);
  EXPECT_FALSE(FaultInjector::Global().MaybeFail("storage.merge").ok());
  EXPECT_FALSE(FaultInjector::Global().MaybeFail("storage.merge").ok());
  EXPECT_OK(FaultInjector::Global().MaybeFail("storage.merge"));
  FaultInjector::PointStats stats =
      FaultInjector::Global().stats("storage.merge");
  EXPECT_EQ(stats.fired, 2u);
  EXPECT_EQ(stats.hits, 3u);
}

TEST_F(FaultInjectorTest, ArmFromSpecParsesAndDisarms) {
  ASSERT_OK(FaultInjector::Global().ArmFromSpec(
      "maintenance.fold:0.5,storage.merge:1:3"));
  EXPECT_TRUE(FaultInjector::Global().AnyArmed());
  ASSERT_OK(FaultInjector::Global().ArmFromSpec("off"));
  EXPECT_FALSE(FaultInjector::Global().AnyArmed());
  EXPECT_FALSE(FaultInjector::Global().ArmFromSpec("fold:not-a-number").ok());
}

TEST_F(FaultInjectorTest, GenuineErrorIsNotInjected) {
  EXPECT_FALSE(
      FaultInjector::IsInjectedFault(Status::Internal("disk on fire")));
  EXPECT_FALSE(FaultInjector::IsInjectedFault(Status::Ok()));
}

std::vector<AggregateFunction> FunctionsOf(const AggregateQuery& query) {
  std::vector<AggregateFunction> functions;
  for (const AggregateSpec& spec : query.aggregates) {
    functions.push_back(spec.fn);
  }
  return functions;
}

TEST(OracleTest, MatchesEngineOnHeaderItemJoin) {
  Database db;
  Table* header = nullptr;
  Table* item = nullptr;
  CreateHeaderItemTables(&db, &header, &item);
  int64_t next_item_id = 1;
  for (int64_t h = 1; h <= 6; ++h) {
    ASSERT_OK(InsertBusinessObject(&db, header, item, h, 2014 + h % 2,
                                   /*num_items=*/3, /*amount=*/10.5 * h,
                                   &next_item_id));
  }
  ASSERT_OK(db.MergeTables({"Header"}));  // Mixed main/delta visibility.

  AggregateQuery query = HeaderItemQuery();
  AggregateCacheManager cache(&db);
  Transaction txn = db.Begin();
  ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                       OracleExecute(db, query, txn.snapshot()));
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kUncached, ExecutionStrategy::kCachedFullPruning}) {
    ExecutionOptions options;
    options.strategy = strategy;
    ASSERT_OK_AND_ASSIGN(AggregateResult actual,
                         cache.Execute(query, txn, options));
    EXPECT_EQ(std::nullopt,
              DiffResults(expected, actual, FunctionsOf(query)))
        << ExecutionStrategyToString(strategy);
  }
}

TEST(OracleTest, DiffReportsStaleSnapshot) {
  Database db;
  Table* header = nullptr;
  Table* item = nullptr;
  CreateHeaderItemTables(&db, &header, &item);
  int64_t next_item_id = 1;
  ASSERT_OK(InsertBusinessObject(&db, header, item, 1, 2015, 2, 10.0,
                                 &next_item_id));
  Transaction before = db.Begin();
  ASSERT_OK(InsertBusinessObject(&db, header, item, 2, 2015, 2, 20.0,
                                 &next_item_id));
  Transaction after = db.Begin();

  AggregateQuery query = HeaderItemQuery();
  AggregateCacheManager cache(&db);
  ASSERT_OK_AND_ASSIGN(AggregateResult stale,
                       OracleExecute(db, query, before.snapshot()));
  ASSERT_OK_AND_ASSIGN(AggregateResult fresh,
                       cache.Execute(query, after, ExecutionOptions()));
  auto diff = DiffResults(stale, fresh, FunctionsOf(query));
  ASSERT_TRUE(diff.has_value());
  EXPECT_FALSE(diff->empty());
}

FuzzOptions SmokeOptions() {
  FuzzOptions options;
  options.steps = 30;
  options.check_every = 5;
  return options;
}

TEST(FuzzHarnessTest, CleanSeedsMatchOracle) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    FuzzReport report = RunFuzzSeed(seed, SmokeOptions());
    ASSERT_TRUE(report.ok) << report.Summary() << "\n" << report.trace;
    EXPECT_GT(report.queries_checked, 0u) << report.Summary();
    EXPECT_GT(report.combos_checked, report.queries_checked);
  }
}

TEST(FuzzHarnessTest, FaultSeedsConvergeToOracle) {
  FuzzOptions options = SmokeOptions();
  options.with_faults = true;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    FuzzReport report = RunFuzzSeed(seed, options);
    ASSERT_TRUE(report.ok) << report.Summary() << "\n" << report.trace;
  }
  EXPECT_FALSE(FaultInjector::Global().AnyArmed());
}

TEST(FuzzHarnessTest, SelfTestReportsPlantedDivergence) {
  FuzzOptions options = SmokeOptions();
  options.inject_divergence = true;
  FuzzReport report = RunFuzzSeed(1, options);
  ASSERT_FALSE(report.ok);
  ASSERT_TRUE(report.failure.has_value());
  EXPECT_FALSE(report.failure->where.empty());
  EXPECT_FALSE(report.failure->query_sql.empty());
  EXPECT_FALSE(report.failure->description.empty());
  // The trace must carry the diverging query so the failure replays.
  EXPECT_NE(report.trace.find(report.failure->query_sql), std::string::npos);
}

TEST(FuzzHarnessTest, EmittedTraceReplays) {
  FuzzReport report = RunFuzzSeed(3, SmokeOptions());
  ASSERT_TRUE(report.ok) << report.Summary();
  Database db;
  AggregateCacheManager cache(&db);
  TraceReplayer replayer(&db, &cache);
  ASSERT_OK_AND_ASSIGN(TraceReport replayed,
                       replayer.ReplayString(report.trace));
  EXPECT_EQ(replayed.queries, report.queries_checked);
  EXPECT_GT(replayed.inserts, 0u);
}

TEST(FuzzHarnessTest, FaultTraceReplaysWithSchedule) {
  FuzzOptions options = SmokeOptions();
  options.with_faults = true;
  options.steps = 40;
  FuzzReport report = RunFuzzSeed(2, options);
  ASSERT_TRUE(report.ok) << report.Summary();
  Database db;
  AggregateCacheManager cache(&db);
  TraceReplayer replayer(&db, &cache);
  auto replayed = replayer.ReplayString(report.trace);
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(replayed.ok()) << replayed.status() << "\n" << report.trace;
  EXPECT_EQ(replayed->queries, report.queries_checked);
}

}  // namespace
}  // namespace aggcache
