#include "common/bit_vector.h"

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(BitVectorTest, ConstructAllClear) {
  BitVector bv(130, false);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.CountOnes(), 0u);
  for (size_t i = 0; i < bv.size(); ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVectorTest, ConstructAllSetClearsPadding) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.CountOnes(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(bv.Get(i));
}

TEST(BitVectorTest, SetAndGet) {
  BitVector bv(128, false);
  bv.Set(0, true);
  bv.Set(63, true);
  bv.Set(64, true);
  bv.Set(127, true);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(127));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.CountOnes(), 4u);
  bv.Set(63, false);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.CountOnes(), 3u);
}

TEST(BitVectorTest, PushBackGrows) {
  BitVector bv;
  for (int i = 0; i < 100; ++i) bv.PushBack(i % 3 == 0);
  EXPECT_EQ(bv.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(bv.Get(i), i % 3 == 0) << i;
}

TEST(BitVectorTest, Equality) {
  BitVector a(10, false);
  BitVector b(10, false);
  EXPECT_TRUE(a == b);
  b.Set(5, true);
  EXPECT_FALSE(a == b);
  BitVector c(11, false);
  EXPECT_FALSE(a == c);
}

TEST(BitVectorTest, OnesClearedInFindsInvalidatedRows) {
  // Snapshot: rows 0..9 visible. Current: rows 3 and 7 invalidated.
  BitVector snapshot(10, true);
  BitVector current(10, true);
  current.Set(3, false);
  current.Set(7, false);
  std::vector<uint32_t> cleared = snapshot.OnesClearedIn(current);
  ASSERT_EQ(cleared.size(), 2u);
  EXPECT_EQ(cleared[0], 3u);
  EXPECT_EQ(cleared[1], 7u);
}

TEST(BitVectorTest, OnesClearedInIgnoresRowsAppendedAfterSnapshot) {
  BitVector snapshot(5, true);
  BitVector current(9, true);  // Four rows appended later.
  current.Set(2, false);
  std::vector<uint32_t> cleared = snapshot.OnesClearedIn(current);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0], 2u);
}

TEST(BitVectorTest, OnesClearedInAcrossWordBoundary) {
  BitVector snapshot(200, true);
  BitVector current(200, true);
  current.Set(63, false);
  current.Set(64, false);
  current.Set(199, false);
  std::vector<uint32_t> cleared = snapshot.OnesClearedIn(current);
  EXPECT_EQ(cleared, (std::vector<uint32_t>{63, 64, 199}));
}

TEST(BitVectorTest, OnesClearedInEmpty) {
  BitVector snapshot;
  BitVector current(4, true);
  EXPECT_TRUE(snapshot.OnesClearedIn(current).empty());
}

}  // namespace
}  // namespace aggcache
