// Robustness property tests for the SQL front end: arbitrary byte strings
// and mutated valid statements must never crash the tokenizer or parser —
// they either parse or come back as a clean Status.

#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sql/parser.h"
#include "sql/tokenizer.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string input;
    int length = static_cast<int>(rng.UniformInt(0, 80));
    for (int i = 0; i < length; ++i) {
      input += static_cast<char>(rng.UniformInt(32, 126));
    }
    // Must not crash; a Status of either kind is acceptable.
    auto tokens = Tokenize(input);
    auto parsed = ParseStatement(input, db_);
    (void)tokens;
    (void)parsed;
  }
}

TEST_P(ParserFuzzTest, MutatedValidStatementsNeverCrash) {
  const std::string base =
      "SELECT FiscalYear, SUM(Amount) AS revenue, COUNT(*) AS n "
      "FROM Header, Item WHERE Header.HeaderID = Item.HeaderID "
      "AND Amount > 1.5 GROUP BY FiscalYear;";
  Rng rng(GetParam() * 31 + 7);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = base;
    int edits = static_cast<int>(rng.UniformInt(1, 5));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:  // Replace a character.
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:  // Delete a character.
          mutated.erase(pos, 1);
          break;
        default:  // Duplicate a slice.
          mutated.insert(pos, mutated.substr(
                                  pos, std::min<size_t>(8, mutated.size() -
                                                               pos)));
          break;
      }
      if (mutated.empty()) break;
    }
    auto parsed = ParseStatement(mutated, db_);
    (void)parsed;
  }
}

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kPieces[] = {
      "SELECT", "FROM",  "WHERE",  "GROUP", "BY",    "AND",   "SUM",
      "COUNT",  "AVG",   "(",      ")",     "*",     ",",     ".",
      "=",      "<>",    "<=",     "'x'",   "42",    "3.5",   "Header",
      "Item",   "Amount", "HeaderID", "FiscalYear", "AS",  "INSERT",
      "INTO",   "VALUES", "CREATE", "TABLE", "BIGINT", "PRIMARY", "KEY",
      "REFERENCES", "TID", "OWN", ";"};
  Rng rng(GetParam() * 17 + 3);
  for (int round = 0; round < 300; ++round) {
    std::string input;
    int pieces = static_cast<int>(rng.UniformInt(1, 25));
    for (int i = 0; i < pieces; ++i) {
      input += kPieces[rng.UniformInt(
          0, static_cast<int64_t>(std::size(kPieces)) - 1)];
      input += ' ';
    }
    auto parsed = ParseStatement(input, db_);
    // Successfully parsed SELECTs must also be executable without crashing.
    if (parsed.ok() && parsed->kind == ParsedStatement::Kind::kSelect) {
      Executor executor(&db_);
      auto result = executor.ExecuteUncached(
          parsed->select, db_.txn_manager().GlobalSnapshot());
      (void)result;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

// Hand-curated corpus of malformed HAVING clauses, join predicates, and
// tid-column predicates: each must come back as an error Status — a clean
// rejection, never an abort and never a silent parse into nonsense.
TEST(ParserMalformedCorpusTest, MalformedStatementsReturnErrorStatus) {
  Database db;
  Table* header = nullptr;
  Table* item = nullptr;
  testing_util::CreateHeaderItemTables(&db, &header, &item);
  const char* kCorpus[] = {
      // --- malformed HAVING ---
      // HAVING without GROUP BY.
      "SELECT SUM(Amount) AS s FROM Item HAVING SUM(Amount) > 1;",
      // HAVING aggregate absent from the select list.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear "
      "HAVING AVG(Amount) > 2;",
      // HAVING on a plain column instead of an aggregate.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear "
      "HAVING FiscalYear > 2012;",
      // HAVING with a dangling operator.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear "
      "HAVING SUM(Amount) >;",
      // HAVING with a string literal against a numeric aggregate.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear "
      "HAVING SUM(Amount) = 'forty';",
      // Two HAVING clauses.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear "
      "HAVING SUM(Amount) > 1 HAVING SUM(Amount) < 9;",
      // --- malformed joins ---
      // Join on a non-equality operator.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID < Item.HeaderID GROUP BY FiscalYear;",
      // Join referencing a table missing from FROM.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear;",
      // Join referencing a nonexistent table.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Ghost.HeaderID GROUP BY FiscalYear;",
      // Join on a nonexistent column.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.NoSuchCol = Item.HeaderID GROUP BY FiscalYear;",
      // Half a join condition.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = GROUP BY FiscalYear;",
      // Self-referential "join".
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Header.HeaderID GROUP BY FiscalYear;",
      // --- malformed tid-column predicates ---
      // Comparing a tid column to a string.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID AND tid_Header > 'abc' "
      "GROUP BY FiscalYear;",
      // Nonexistent tid column.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID AND tid_Ghost > 3 "
      "GROUP BY FiscalYear;",
      // Ambiguous unqualified tid column (both tables have tid_Header).
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID AND tid_Header = = 3 "
      "GROUP BY FiscalYear;",
      // tid predicate with a dangling conjunction.
      "SELECT FiscalYear, SUM(Amount) AS s FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID AND Header.tid_Header > 1 AND "
      "GROUP BY FiscalYear;",
  };
  for (const char* sql : kCorpus) {
    auto parsed = ParseStatement(sql, db);
    EXPECT_FALSE(parsed.ok()) << "expected rejection of: " << sql;
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.status().message().empty()) << sql;
    }
  }
}

}  // namespace
}  // namespace aggcache
