#include "storage/schema.h"

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(SchemaBuilderTest, BuildsHeaderItemPattern) {
  TableSchema schema = SchemaBuilder("Item")
                           .AddColumn("ItemID", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("HeaderID", ColumnType::kInt64)
                           .References("Header", "tid_Header")
                           .AddColumn("Amount", ColumnType::kDouble)
                           .OwnTid("tid_Item")
                           .Build();
  EXPECT_EQ(schema.name, "Item");
  ASSERT_EQ(schema.columns.size(), 5u);
  EXPECT_EQ(schema.columns[0].name, "ItemID");
  EXPECT_EQ(schema.columns[1].name, "HeaderID");
  EXPECT_EQ(schema.columns[2].name, "tid_Header");
  EXPECT_TRUE(schema.columns[2].is_tid);
  EXPECT_EQ(schema.columns[3].name, "Amount");
  EXPECT_EQ(schema.columns[4].name, "tid_Item");
  EXPECT_EQ(*schema.primary_key, 0u);
  EXPECT_EQ(*schema.own_tid_column, 4u);
  ASSERT_EQ(schema.foreign_keys.size(), 1u);
  EXPECT_EQ(schema.foreign_keys[0].column, 1u);
  EXPECT_EQ(schema.foreign_keys[0].ref_table, "Header");
  EXPECT_EQ(*schema.foreign_keys[0].tid_column, 2u);
}

TEST(SchemaBuilderTest, ReferencesWithoutMdColumn) {
  TableSchema schema = SchemaBuilder("T")
                           .AddColumn("id", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("ref", ColumnType::kInt64)
                           .References("Other")
                           .Build();
  ASSERT_EQ(schema.foreign_keys.size(), 1u);
  EXPECT_FALSE(schema.foreign_keys[0].tid_column.has_value());
  EXPECT_EQ(schema.columns.size(), 2u);  // No extra tid column.
}

TEST(SchemaTest, ColumnIndex) {
  TableSchema schema = SchemaBuilder("T")
                           .AddColumn("a", ColumnType::kInt64)
                           .AddColumn("b", ColumnType::kString)
                           .Build();
  auto a = schema.ColumnIndex("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(schema.ColumnIndex("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, NumUserColumnsExcludesTidColumns) {
  TableSchema schema = SchemaBuilder("T")
                           .AddColumn("a", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("b", ColumnType::kInt64)
                           .References("R", "tid_R")
                           .OwnTid("tid_T")
                           .Build();
  EXPECT_EQ(schema.columns.size(), 4u);
  EXPECT_EQ(schema.NumUserColumns(), 2u);
}

TEST(SchemaValidateTest, RejectsBadSchemas) {
  TableSchema no_name;
  no_name.columns.push_back({"a", ColumnType::kInt64, false});
  EXPECT_FALSE(no_name.Validate().ok());

  TableSchema no_columns;
  no_columns.name = "T";
  EXPECT_FALSE(no_columns.Validate().ok());

  TableSchema duplicate;
  duplicate.name = "T";
  duplicate.columns.push_back({"a", ColumnType::kInt64, false});
  duplicate.columns.push_back({"a", ColumnType::kString, false});
  EXPECT_FALSE(duplicate.Validate().ok());

  TableSchema string_tid;
  string_tid.name = "T";
  string_tid.columns.push_back({"t", ColumnType::kString, true});
  EXPECT_FALSE(string_tid.Validate().ok());

  TableSchema bad_pk;
  bad_pk.name = "T";
  bad_pk.columns.push_back({"a", ColumnType::kInt64, false});
  bad_pk.primary_key = 3;
  EXPECT_FALSE(bad_pk.Validate().ok());

  TableSchema own_tid_not_marked;
  own_tid_not_marked.name = "T";
  own_tid_not_marked.columns.push_back({"a", ColumnType::kInt64, false});
  own_tid_not_marked.own_tid_column = 0;
  EXPECT_FALSE(own_tid_not_marked.Validate().ok());

  TableSchema fk_no_table;
  fk_no_table.name = "T";
  fk_no_table.columns.push_back({"a", ColumnType::kInt64, false});
  fk_no_table.foreign_keys.push_back({0, "", std::nullopt});
  EXPECT_FALSE(fk_no_table.Validate().ok());
}

}  // namespace
}  // namespace aggcache
