#include "gtest/gtest.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class HavingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    cache_ = std::make_unique<AggregateCacheManager>(&db_);
    // Header 1 (2013) has 4 items of 10; header 2 (2014) has 1 item of 10.
    ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 1,
                                                 2013, 4, 10.0,
                                                 &next_item_id_));
    ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 2,
                                                 2014, 1, 10.0,
                                                 &next_item_id_));
  }

  AggregateQuery RevenueWithHaving(double min_revenue) {
    return QueryBuilder()
        .From("Header")
        .Join("Item", "HeaderID", "HeaderID")
        .GroupBy("Header", "FiscalYear")
        .Sum("Item", "Amount", "revenue")
        .Having(CompareOp::kGt, Value(min_revenue))
        .CountStar("n")
        .Build();
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  std::unique_ptr<AggregateCacheManager> cache_;
  int64_t next_item_id_ = 1;
};

TEST_F(HavingTest, FiltersGroupsOnFinalizedValues) {
  Transaction txn = db_.Begin();
  auto result = cache_->Execute(RevenueWithHaving(20.0), txn);
  ASSERT_TRUE(result.ok()) << result.status();
  // Only 2013 (revenue 40) survives; 2014 (revenue 10) is filtered.
  ASSERT_EQ(result->num_groups(), 1u);
  EXPECT_TRUE(result->groups().contains(GroupKey{{Value(int64_t{2013})}}));
}

TEST_F(HavingTest, NoHavingKeepsAllGroups) {
  Transaction txn = db_.Begin();
  auto result = cache_->Execute(RevenueWithHaving(0.0), txn);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 2u);
}

TEST_F(HavingTest, CachedAndUncachedAgreeUnderHaving) {
  AggregateQuery query = RevenueWithHaving(20.0);
  Transaction txn = db_.Begin();
  ExecutionOptions uncached;
  uncached.strategy = ExecutionStrategy::kUncached;
  auto baseline = cache_->Execute(query, txn, uncached);
  auto cached = cache_->Execute(query, txn);
  ASSERT_TRUE(baseline.ok() && cached.ok());
  std::string diff;
  EXPECT_TRUE(cached->ApproxEquals(*baseline, 1e-9, &diff)) << diff;
}

TEST_F(HavingTest, HavingAppliesAfterCompensation) {
  // 2014 revenue is 10 before, 30 after two new delta items: HAVING > 20
  // must see the compensated value, not the cached one.
  AggregateQuery query = RevenueWithHaving(20.0);
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query, warm).ok());
  Transaction txn = db_.Begin();
  ASSERT_OK(item_->Insert(
      txn, {Value(next_item_id_++), Value(int64_t{2}), Value(10.0)}));
  ASSERT_OK(item_->Insert(
      txn, {Value(next_item_id_++), Value(int64_t{2}), Value(10.0)}));
  Transaction reader = db_.Begin();
  auto result = cache_->Execute(query, reader);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 2u);
  EXPECT_TRUE(result->groups().contains(GroupKey{{Value(int64_t{2014})}}));
}

TEST_F(HavingTest, QueriesDifferingOnlyInHavingShareAnEntry) {
  Transaction txn = db_.Begin();
  ASSERT_TRUE(cache_->Execute(RevenueWithHaving(20.0), txn).ok());
  EXPECT_EQ(cache_->num_entries(), 1u);
  ASSERT_TRUE(cache_->Execute(RevenueWithHaving(35.0), txn).ok());
  EXPECT_EQ(cache_->num_entries(), 1u);  // Same underlying aggregate.
  EXPECT_TRUE(cache_->last_exec_stats().cache_hit);
}

TEST_F(HavingTest, ValidateChecksAggregateIndex) {
  AggregateQuery query = RevenueWithHaving(1.0);
  query.having[0].aggregate_index = 9;
  EXPECT_FALSE(query.Validate(db_).ok());
}

TEST_F(HavingTest, CountStarHaving) {
  AggregateQuery query = QueryBuilder()
                             .From("Item")
                             .GroupBy("Item", "HeaderID")
                             .CountStar("n")
                             .Having(CompareOp::kGe, Value(int64_t{2}))
                             .Build();
  Transaction txn = db_.Begin();
  auto result = cache_->Execute(query, txn);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_groups(), 1u);  // Only header 1 has >= 2 items.
  EXPECT_TRUE(result->groups().contains(GroupKey{{Value(int64_t{1})}}));
}

TEST_F(HavingTest, SqlHavingParses) {
  auto stmt = ParseStatement(
      "SELECT FiscalYear, SUM(Amount) AS revenue FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear "
      "HAVING SUM(Amount) > 20",
      db_);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->select.having.size(), 1u);
  EXPECT_EQ(stmt->select.having[0].aggregate_index, 0u);
  EXPECT_EQ(stmt->select.having[0].op, CompareOp::kGt);
  Transaction txn = db_.Begin();
  auto result = cache_->Execute(stmt->select, txn);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 1u);
}

TEST_F(HavingTest, SqlHavingCountStar) {
  auto stmt = ParseStatement(
      "SELECT HeaderID, COUNT(*) AS n FROM Item GROUP BY HeaderID "
      "HAVING COUNT(*) >= 2 AND COUNT(*) <= 10;",
      db_);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->select.having.size(), 2u);
}

TEST_F(HavingTest, SqlHavingMustMatchSelectList) {
  auto stmt = ParseStatement(
      "SELECT FiscalYear, SUM(Amount) AS r FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear "
      "HAVING AVG(Amount) > 5",
      db_);
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("SELECT list"), std::string::npos);
}

TEST_F(HavingTest, SqlHavingRequiresAggregate) {
  auto stmt = ParseStatement(
      "SELECT FiscalYear, SUM(Amount) AS r FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear "
      "HAVING FiscalYear > 2010",
      db_);
  EXPECT_FALSE(stmt.ok());
}

TEST_F(HavingTest, ToSqlRendersHaving) {
  std::string sql = RevenueWithHaving(20.0).ToSql();
  EXPECT_NE(sql.find("HAVING SUM(Item.Amount) > 20"), std::string::npos);
}

TEST_F(HavingTest, SummaryTableViewsRejectHaving) {
  AggregateQuery query = QueryBuilder()
                             .From("Item")
                             .GroupBy("Item", "HeaderID")
                             .Sum("Item", "Amount", "s")
                             .Having(CompareOp::kGt, Value(5.0))
                             .Build();
  auto view = CreateMaterializedAggregate(
      MaintenanceStrategy::kEagerIncremental, &db_, query, nullptr);
  EXPECT_FALSE(view.ok());
}

}  // namespace
}  // namespace aggcache
