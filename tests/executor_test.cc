#include "query/executor.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    // Headers 1..4 across two years, 3 items each of amount 10.
    int64_t next_item = 1;
    for (int64_t h = 1; h <= 4; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, h <= 2 ? 2013 : 2014, 3, 10.0,
          &next_item));
    }
  }

  Snapshot Now() { return db_.txn_manager().GlobalSnapshot(); }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1000;
};

TEST_F(ExecutorTest, SingleTableAggregation) {
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .GroupBy("Header", "FiscalYear")
                             .CountStar("n")
                             .Build();
  Executor executor(&db_);
  auto result = executor.ExecuteUncached(query, Now());
  ASSERT_TRUE(result.ok()) << result.status();
  auto rows = result->Rows({AggregateFunction::kCountStar});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<Value>{Value(int64_t{2013}),
                                         Value(int64_t{2})}));
  EXPECT_EQ(rows[1], (std::vector<Value>{Value(int64_t{2014}),
                                         Value(int64_t{2})}));
}

TEST_F(ExecutorTest, TwoTableJoinAggregation) {
  Executor executor(&db_);
  auto result =
      executor.ExecuteUncached(testing_util::HeaderItemQuery(), Now());
  ASSERT_TRUE(result.ok()) << result.status();
  auto rows = result->Rows(
      {AggregateFunction::kSum, AggregateFunction::kCountStar});
  ASSERT_EQ(rows.size(), 2u);
  // 2 headers x 3 items x 10.0 per year.
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 60.0);
  EXPECT_EQ(rows[0][2], Value(int64_t{6}));
  EXPECT_DOUBLE_EQ(rows[1][1].AsDouble(), 60.0);
}

TEST_F(ExecutorTest, JoinSpansMainAndDelta) {
  // Merge, then insert more: matches must cross the main/delta boundary.
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  Transaction txn = db_.Begin();
  // Late item for merged header 1 (2013).
  ASSERT_OK(item_->Insert(
      txn, {Value(int64_t{100}), Value(int64_t{1}), Value(5.0)}));
  Executor executor(&db_);
  auto result =
      executor.ExecuteUncached(testing_util::HeaderItemQuery(), Now());
  ASSERT_TRUE(result.ok());
  auto rows = result->Rows(
      {AggregateFunction::kSum, AggregateFunction::kCountStar});
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 65.0);
  EXPECT_EQ(rows[0][2], Value(int64_t{7}));
}

TEST_F(ExecutorTest, FiltersApply) {
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .Join("Item", "HeaderID", "HeaderID")
                             .Filter("Header", "FiscalYear", CompareOp::kEq,
                                     Value(int64_t{2013}))
                             .GroupBy("Header", "FiscalYear")
                             .Sum("Item", "Amount", "s")
                             .Build();
  Executor executor(&db_);
  auto result = executor.ExecuteUncached(query, Now());
  ASSERT_TRUE(result.ok());
  auto rows = result->Rows({AggregateFunction::kSum});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{2013}));
}

TEST_F(ExecutorTest, SnapshotIsolation) {
  Snapshot before = Now();
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{99}), Value(int64_t{2013})}));
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .GroupBy("Header", "FiscalYear")
                             .CountStar("n")
                             .Build();
  Executor executor(&db_);
  auto old_view = executor.ExecuteUncached(query, before);
  auto new_view = executor.ExecuteUncached(query, Now());
  ASSERT_TRUE(old_view.ok() && new_view.ok());
  auto old_rows = old_view->Rows({AggregateFunction::kCountStar});
  auto new_rows = new_view->Rows({AggregateFunction::kCountStar});
  EXPECT_EQ(old_rows[0][1], Value(int64_t{2}));
  EXPECT_EQ(new_rows[0][1], Value(int64_t{3}));
}

TEST_F(ExecutorTest, InvalidatedRowsExcluded) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{1})));
  Executor executor(&db_);
  auto result =
      executor.ExecuteUncached(testing_util::HeaderItemQuery(), Now());
  ASSERT_TRUE(result.ok());
  auto rows = result->Rows(
      {AggregateFunction::kSum, AggregateFunction::kCountStar});
  // Year 2013 lost header 1's three items.
  EXPECT_EQ(rows[0][2], Value(int64_t{3}));
}

TEST_F(ExecutorTest, ExecuteSubjoinRespectsCombination) {
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 50,
                                               2013, 2, 1.0,
                                               &next_item_id_));
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  Executor executor(&db_);

  // delta x delta sees only the new business object.
  SubjoinCombination dd = {{0, PartitionKind::kDelta},
                           {0, PartitionKind::kDelta}};
  auto dd_result = executor.ExecuteSubjoin(*bound, dd, Now());
  ASSERT_TRUE(dd_result.ok());
  auto rows = dd_result->Rows(
      {AggregateFunction::kSum, AggregateFunction::kCountStar});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][2], Value(int64_t{2}));

  // main x delta is empty (no late items).
  SubjoinCombination md = {{0, PartitionKind::kMain},
                           {0, PartitionKind::kDelta}};
  auto md_result = executor.ExecuteSubjoin(*bound, md, Now());
  ASSERT_TRUE(md_result.ok());
  EXPECT_TRUE(md_result->empty());
}

TEST_F(ExecutorTest, UnionOfSubjoinsEqualsUncached) {
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 60,
                                               2014, 4, 2.0,
                                               &next_item_id_));
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  Executor executor(&db_);
  AggregateResult merged(bound->aggregates.size());
  for (const SubjoinCombination& combo :
       EnumerateAllCombinations(bound->tables)) {
    auto partial = executor.ExecuteSubjoin(*bound, combo, Now());
    ASSERT_TRUE(partial.ok());
    merged.MergeFrom(*partial);
  }
  auto uncached = executor.ExecuteUncached(query, Now());
  ASSERT_TRUE(uncached.ok());
  std::string diff;
  EXPECT_TRUE(merged.ApproxEquals(*uncached, 1e-9, &diff)) << diff;
}

TEST_F(ExecutorTest, ExtraFiltersRestrictSubjoin) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  Executor executor(&db_);
  SubjoinCombination dd = {{0, PartitionKind::kDelta},
                           {0, PartitionKind::kDelta}};
  std::vector<FilterPredicate> extra = {
      {0, "FiscalYear", CompareOp::kEq, Value(int64_t{2013})}};
  auto result = executor.ExecuteSubjoin(*bound, dd, Now(), extra);
  ASSERT_TRUE(result.ok());
  auto rows = result->Rows(
      {AggregateFunction::kSum, AggregateFunction::kCountStar});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{2013}));
}

TEST_F(ExecutorTest, FilterOpsAgreeAcrossMainAndDelta) {
  // Exercise every comparison operator against both a sorted main column
  // (code-range fast path) and an unsorted delta column (value fallback):
  // results must match a row-by-row evaluation.
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{50}), Value(int64_t{2015})}));
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{51}), Value(int64_t{2016})}));

  Executor executor(&db_);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    for (int64_t operand : {2012, 2013, 2014, 2015, 2016, 2017}) {
      AggregateQuery query = QueryBuilder()
                                 .From("Header")
                                 .Filter("Header", "FiscalYear", op,
                                         Value(operand))
                                 .GroupBy("Header", "FiscalYear")
                                 .CountStar("n")
                                 .Build();
      auto result = executor.ExecuteUncached(query, Now());
      ASSERT_TRUE(result.ok());
      // Reference: count matching rows by direct evaluation.
      int64_t expected = 0;
      for (size_t g = 0; g < header_->num_groups(); ++g) {
        for (const Partition* p : {&header_->group(g).main,
                                   &header_->group(g).delta}) {
          for (size_t r = 0; r < p->num_rows(); ++r) {
            if (!Now().RowVisible(p->create_tid(r), p->invalidate_tid(r))) {
              continue;
            }
            if (EvalCompare(op, p->column(1).GetValue(r), Value(operand))) {
              ++expected;
            }
          }
        }
      }
      int64_t actual = 0;
      for (const auto& [key, entry] : result->groups()) {
        actual += entry.count_star;
      }
      EXPECT_EQ(actual, expected)
          << CompareOpToString(op) << " " << operand;
    }
  }
}

TEST_F(ExecutorTest, StatsCountWork) {
  Executor executor(&db_);
  executor.stats().Reset();
  auto result =
      executor.ExecuteUncached(testing_util::HeaderItemQuery(), Now());
  ASSERT_TRUE(result.ok());
  ExecutorStats snapshot = executor.stats().Snapshot();
  EXPECT_EQ(snapshot.subjoins_executed, 4u);
  EXPECT_GT(snapshot.rows_scanned, 0u);
  EXPECT_EQ(snapshot.tuples_joined, 12u);  // All items join.
}

TEST_F(ExecutorTest, CombinationArityMismatchRejected) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  Executor executor(&db_);
  SubjoinCombination wrong = {{0, PartitionKind::kMain}};
  EXPECT_FALSE(executor.ExecuteSubjoin(*bound, wrong, Now()).ok());
}

}  // namespace
}  // namespace aggcache
