#include "storage/column.h"

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(ColumnTest, DeltaAppendAndRead) {
  Column col = Column::MakeDelta(ColumnType::kInt64);
  EXPECT_FALSE(col.is_main());
  ASSERT_TRUE(col.Append(Value(int64_t{7})).ok());
  ASSERT_TRUE(col.Append(Value(int64_t{3})).ok());
  ASSERT_TRUE(col.Append(Value(int64_t{7})).ok());
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.GetValue(0), Value(int64_t{7}));
  EXPECT_EQ(col.GetValue(1), Value(int64_t{3}));
  EXPECT_EQ(col.GetValue(2), Value(int64_t{7}));
  EXPECT_EQ(col.code(0), col.code(2));  // Same dictionary code.
  EXPECT_NE(col.code(0), col.code(1));
  EXPECT_EQ(col.GetInt64(1), 3);
}

TEST(ColumnTest, DeltaAppendRejectsWrongType) {
  Column col = Column::MakeDelta(ColumnType::kDouble);
  EXPECT_FALSE(col.Append(Value(int64_t{1})).ok());
  EXPECT_FALSE(col.Append(Value()).ok());
  EXPECT_TRUE(col.Append(Value(1.5)).ok());
}

TEST(ColumnTest, MainColumnRoundTrip) {
  Dictionary dict = Dictionary::BuildSorted(
      ColumnType::kString, {Value("x"), Value("y"), Value("z")});
  Column col = Column::MakeMain(std::move(dict), {2, 0, 1, 0});
  EXPECT_TRUE(col.is_main());
  EXPECT_EQ(col.size(), 4u);
  EXPECT_EQ(col.GetValue(0), Value("z"));
  EXPECT_EQ(col.GetValue(1), Value("x"));
  EXPECT_EQ(col.GetValue(2), Value("y"));
  EXPECT_EQ(col.GetValue(3), Value("x"));
}

TEST(ColumnTest, MainColumnIsImmutable) {
  Dictionary dict = Dictionary::BuildSorted(ColumnType::kInt64,
                                            {Value(int64_t{1})});
  Column col = Column::MakeMain(std::move(dict), {0});
  EXPECT_EQ(col.Append(Value(int64_t{2})).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ColumnTest, MainCompressesSmallerThanDelta) {
  // Same content: 10k rows over 4 distinct values. Main should be several
  // times smaller thanks to 2-bit packing (vs 32-bit delta codes).
  Column delta = Column::MakeDelta(ColumnType::kInt64);
  std::vector<Value> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(Value(static_cast<int64_t>(i % 4)));
    ASSERT_TRUE(delta.Append(values.back()).ok());
  }
  std::vector<ValueId> codes;
  Dictionary dict = Dictionary::BuildSorted(ColumnType::kInt64, values);
  for (const Value& v : values) codes.push_back(*dict.Find(v));
  Column main = Column::MakeMain(std::move(dict), codes);
  EXPECT_LT(main.ByteSize() * 4, delta.ByteSize());
}

TEST(ColumnTest, EmptyMainColumn) {
  Column col = Column::MakeMain(
      Dictionary::BuildSorted(ColumnType::kInt64, {}), {});
  EXPECT_EQ(col.size(), 0u);
  EXPECT_TRUE(col.dictionary().empty());
}

}  // namespace
}  // namespace aggcache
