#include "query/predicate.h"

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(EvalCompareTest, IntComparisons) {
  Value five(int64_t{5});
  Value six(int64_t{6});
  EXPECT_TRUE(EvalCompare(CompareOp::kEq, five, five));
  EXPECT_FALSE(EvalCompare(CompareOp::kEq, five, six));
  EXPECT_TRUE(EvalCompare(CompareOp::kNe, five, six));
  EXPECT_TRUE(EvalCompare(CompareOp::kLt, five, six));
  EXPECT_FALSE(EvalCompare(CompareOp::kLt, five, five));
  EXPECT_TRUE(EvalCompare(CompareOp::kLe, five, five));
  EXPECT_TRUE(EvalCompare(CompareOp::kGt, six, five));
  EXPECT_TRUE(EvalCompare(CompareOp::kGe, five, five));
  EXPECT_FALSE(EvalCompare(CompareOp::kGe, five, six));
}

TEST(EvalCompareTest, StringComparisons) {
  EXPECT_TRUE(EvalCompare(CompareOp::kEq, Value("abc"), Value("abc")));
  EXPECT_TRUE(EvalCompare(CompareOp::kLt, Value("abc"), Value("abd")));
  EXPECT_TRUE(EvalCompare(CompareOp::kGt, Value("b"), Value("a")));
}

TEST(FilterPredicateTest, ToString) {
  FilterPredicate f{1, "Price", CompareOp::kGe, Value(2.5)};
  EXPECT_EQ(f.ToString(), "t1.Price >= 2.5");
}

TEST(CompareOpTest, Names) {
  EXPECT_STREQ(CompareOpToString(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kNe), "<>");
  EXPECT_STREQ(CompareOpToString(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpToString(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kGt), ">");
  EXPECT_STREQ(CompareOpToString(CompareOp::kGe), ">=");
}

class PredicateCanMatchTest : public ::testing::Test {
 protected:
  // Dictionary over {10, 20, 30}.
  Dictionary dict_ = Dictionary::BuildSorted(
      ColumnType::kInt64,
      {Value(int64_t{10}), Value(int64_t{20}), Value(int64_t{30})});
};

TEST_F(PredicateCanMatchTest, EqInsideAndOutsideRange) {
  EXPECT_TRUE(PredicateCanMatch(CompareOp::kEq, Value(int64_t{10}), dict_));
  EXPECT_TRUE(PredicateCanMatch(CompareOp::kEq, Value(int64_t{25}), dict_));
  EXPECT_FALSE(PredicateCanMatch(CompareOp::kEq, Value(int64_t{5}), dict_));
  EXPECT_FALSE(PredicateCanMatch(CompareOp::kEq, Value(int64_t{31}), dict_));
}

TEST_F(PredicateCanMatchTest, RangeOps) {
  EXPECT_FALSE(PredicateCanMatch(CompareOp::kLt, Value(int64_t{10}), dict_));
  EXPECT_TRUE(PredicateCanMatch(CompareOp::kLe, Value(int64_t{10}), dict_));
  EXPECT_TRUE(PredicateCanMatch(CompareOp::kLt, Value(int64_t{11}), dict_));
  EXPECT_FALSE(PredicateCanMatch(CompareOp::kGt, Value(int64_t{30}), dict_));
  EXPECT_TRUE(PredicateCanMatch(CompareOp::kGe, Value(int64_t{30}), dict_));
  EXPECT_TRUE(PredicateCanMatch(CompareOp::kGt, Value(int64_t{29}), dict_));
}

TEST_F(PredicateCanMatchTest, NeOnlyFailsForSingletonMatch) {
  EXPECT_TRUE(PredicateCanMatch(CompareOp::kNe, Value(int64_t{10}), dict_));
  Dictionary singleton =
      Dictionary::BuildSorted(ColumnType::kInt64, {Value(int64_t{7})});
  EXPECT_FALSE(
      PredicateCanMatch(CompareOp::kNe, Value(int64_t{7}), singleton));
  EXPECT_TRUE(
      PredicateCanMatch(CompareOp::kNe, Value(int64_t{8}), singleton));
}

TEST_F(PredicateCanMatchTest, EmptyDictionaryNeverMatches) {
  Dictionary empty = Dictionary::BuildSorted(ColumnType::kInt64, {});
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(PredicateCanMatch(op, Value(int64_t{1}), empty));
  }
}

TEST(SortedCodeRangeTest, RangesMatchPredicateSemantics) {
  // Dictionary over {10, 20, 30, 40}; for every op and operand, code-range
  // membership must equal direct evaluation.
  Dictionary dict = Dictionary::BuildSorted(
      ColumnType::kInt64, {Value(int64_t{40}), Value(int64_t{10}),
                           Value(int64_t{30}), Value(int64_t{20})});
  for (int op_int = 0; op_int < 6; ++op_int) {
    CompareOp op = static_cast<CompareOp>(op_int);
    for (int64_t operand = 5; operand <= 45; operand += 5) {
      auto range = SortedDictionaryCodeRange(op, Value(operand), dict);
      for (ValueId code = 0; code < dict.size(); ++code) {
        bool in_range = range.has_value() && range->first <= code &&
                        code <= range->second;
        bool matches = EvalCompare(op, dict.value(code), Value(operand));
        if (op == CompareOp::kNe) {
          // kNe never compiles to a range.
          EXPECT_FALSE(range.has_value());
        } else {
          EXPECT_EQ(in_range, matches)
              << CompareOpToString(op) << " " << operand << " code "
              << code;
        }
      }
    }
  }
}

TEST(SortedCodeRangeTest, UnsortedAndEmptyDictionariesDecline) {
  Dictionary delta(ColumnType::kInt64, Dictionary::Mode::kUnsortedDelta);
  ASSERT_TRUE(delta.GetOrAdd(Value(int64_t{1})).ok());
  EXPECT_FALSE(SortedDictionaryCodeRange(CompareOp::kEq, Value(int64_t{1}),
                                         delta)
                   .has_value());
  Dictionary empty = Dictionary::BuildSorted(ColumnType::kInt64, {});
  EXPECT_FALSE(SortedDictionaryCodeRange(CompareOp::kGe, Value(int64_t{1}),
                                         empty)
                   .has_value());
}

TEST(SortedCodeRangeTest, StringDictionary) {
  Dictionary dict = Dictionary::BuildSorted(
      ColumnType::kString, {Value("pear"), Value("apple"), Value("mango")});
  auto range = SortedDictionaryCodeRange(CompareOp::kGe, Value("mango"),
                                         dict);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 1u);   // mango.
  EXPECT_EQ(range->second, 2u);  // pear.
  auto eq = SortedDictionaryCodeRange(CompareOp::kEq, Value("banana"), dict);
  EXPECT_FALSE(eq.has_value());
}

// Property: PredicateCanMatch is conservative — whenever any dictionary
// value satisfies the predicate, it must return true.
TEST_F(PredicateCanMatchTest, NeverPrunesAMatch) {
  for (int op_int = 0; op_int < 6; ++op_int) {
    CompareOp op = static_cast<CompareOp>(op_int);
    for (int64_t operand = 0; operand <= 40; ++operand) {
      bool any_match = false;
      for (size_t i = 0; i < dict_.size(); ++i) {
        if (EvalCompare(op, dict_.value(i), Value(operand))) {
          any_match = true;
        }
      }
      if (any_match) {
        EXPECT_TRUE(PredicateCanMatch(op, Value(operand), dict_))
            << CompareOpToString(op) << " " << operand;
      }
    }
  }
}

}  // namespace
}  // namespace aggcache
