#include "cache/cache_entry.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class CacheEntryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    for (int64_t h = 1; h <= 4; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2013, 2, 1.0, &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
    query_ = testing_util::HeaderItemQuery();
    tables_ = {header_, item_};
  }

  CacheEntry MakeEntry() {
    CacheEntry entry(MakeCacheKey(query_), query_);
    entry.snapshots().resize(2);
    for (size_t t = 0; t < 2; ++t) {
      const Partition& main = tables_[t]->group(0).main;
      entry.snapshots()[t].resize(1);
      entry.snapshots()[t][0].visibility = BitVector(main.num_rows(), true);
      entry.snapshots()[t][0].row_count = main.num_rows();
      entry.snapshots()[t][0].invalidation_count =
          main.invalidation_count();
    }
    return entry;
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  std::vector<const Table*> tables_;
  int64_t next_item_id_ = 1;
  AggregateQuery query_;
};

TEST_F(CacheEntryTest, CleanEntryIsNotDirty) {
  CacheEntry entry = MakeEntry();
  EXPECT_FALSE(entry.IsDirty(tables_));
  EXPECT_TRUE(entry.ShapeMatches(tables_));
}

TEST_F(CacheEntryTest, InvalidationMakesEntryDirty) {
  CacheEntry entry = MakeEntry();
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{1})));
  EXPECT_TRUE(entry.IsDirty(tables_));
  // The shape still matches (row counts unchanged by invalidation).
  EXPECT_TRUE(entry.ShapeMatches(tables_));
}

TEST_F(CacheEntryTest, DeltaInsertsDoNotDirtyTheEntry) {
  CacheEntry entry = MakeEntry();
  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 9,
                                               2014, 2, 1.0,
                                               &next_item_id_));
  // The aggregate cache never goes stale from inserts: they live in the
  // delta, outside the cached extent.
  EXPECT_FALSE(entry.IsDirty(tables_));
  EXPECT_TRUE(entry.ShapeMatches(tables_));
}

TEST_F(CacheEntryTest, MergeChangesShape) {
  CacheEntry entry = MakeEntry();
  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 9,
                                               2014, 2, 1.0,
                                               &next_item_id_));
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  EXPECT_FALSE(entry.ShapeMatches(tables_));
}

TEST_F(CacheEntryTest, SplitChangesShape) {
  CacheEntry entry = MakeEntry();
  ASSERT_OK(header_->SplitHotCold("HeaderID", Value(int64_t{3})));
  EXPECT_FALSE(entry.ShapeMatches(tables_));
}

TEST_F(CacheEntryTest, MergedMainResultUnionsPartials) {
  CacheEntry entry = MakeEntry();
  AggregateResult a(1);
  a.Accumulate(GroupKey{{Value(int64_t{1})}}, {Value(int64_t{10})});
  AggregateResult b(1);
  b.Accumulate(GroupKey{{Value(int64_t{1})}}, {Value(int64_t{5})});
  b.Accumulate(GroupKey{{Value(int64_t{2})}}, {Value(int64_t{7})});
  entry.main_partials()[{{0, PartitionKind::kMain},
                         {0, PartitionKind::kMain}}] = std::move(a);
  entry.main_partials()[{{1, PartitionKind::kMain},
                         {0, PartitionKind::kMain}}] = std::move(b);
  AggregateResult merged = entry.MergedMainResult(1);
  EXPECT_EQ(merged.num_groups(), 2u);
  auto rows = merged.Rows({AggregateFunction::kSum});
  EXPECT_EQ(rows[0][1], Value(int64_t{15}));
  EXPECT_EQ(rows[1][1], Value(int64_t{7}));
}

TEST_F(CacheEntryTest, RefreshSizeBytesCountsPartialsAndSnapshots) {
  CacheEntry entry = MakeEntry();
  entry.RefreshSizeBytes();
  size_t baseline = entry.metrics().size_bytes;
  EXPECT_GT(baseline, 0u);
  AggregateResult big(1);
  for (int64_t g = 0; g < 200; ++g) {
    big.Accumulate(GroupKey{{Value(g)}}, {Value(g)});
  }
  entry.main_partials()[{{0, PartitionKind::kMain},
                         {0, PartitionKind::kMain}}] = std::move(big);
  entry.RefreshSizeBytes();
  EXPECT_GT(entry.metrics().size_bytes, baseline);
}

TEST_F(CacheEntryTest, MetricsProfitModel) {
  CacheEntryMetrics metrics;
  metrics.main_exec_ms = 100.0;
  metrics.size_bytes = 1000;
  // Unused entry: profit = one saved execution.
  EXPECT_DOUBLE_EQ(metrics.Profit(), 100.0);
  // Used twice with cheap compensation: profit grows.
  metrics.hit_count = 2;
  metrics.total_delta_comp_ms = 10.0;
  metrics.delta_comp_count = 2;
  EXPECT_DOUBLE_EQ(metrics.AvgDeltaCompMs(), 5.0);
  EXPECT_DOUBLE_EQ(metrics.Profit(), (100.0 - 5.0) * 3);
  // Maintenance cost reduces profit.
  metrics.maintenance_ms = 85.0;
  EXPECT_DOUBLE_EQ(metrics.Profit(), (100.0 - 5.0) * 3 - 85.0);
}

}  // namespace
}  // namespace aggcache
