// Tests for the resource-governance layer: hierarchical memory tracking,
// per-query contexts (budget/deadline/cancellation), the admission
// controller's FIFO + shed behavior, and the cache manager's degraded mode
// under memory pressure.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace aggcache {
namespace {

using testing_util::CreateHeaderItemTables;
using testing_util::HeaderItemQuery;
using testing_util::InsertBusinessObject;

// ---------------------------------------------------------------------------
// ParseByteSize

TEST(ParseByteSize, PlainAndSuffixed) {
  size_t bytes = 0;
  EXPECT_TRUE(ParseByteSize("0", &bytes));
  EXPECT_EQ(bytes, 0u);
  EXPECT_TRUE(ParseByteSize("1024", &bytes));
  EXPECT_EQ(bytes, 1024u);
  EXPECT_TRUE(ParseByteSize("64K", &bytes));
  EXPECT_EQ(bytes, 64u * 1024);
  EXPECT_TRUE(ParseByteSize("2m", &bytes));
  EXPECT_EQ(bytes, 2u * 1024 * 1024);
  EXPECT_TRUE(ParseByteSize("1G", &bytes));
  EXPECT_EQ(bytes, 1ull << 30);
}

TEST(ParseByteSize, RejectsMalformed) {
  size_t bytes = 0;
  EXPECT_FALSE(ParseByteSize("", &bytes));
  EXPECT_FALSE(ParseByteSize("abc", &bytes));
  EXPECT_FALSE(ParseByteSize("-5", &bytes));
  EXPECT_FALSE(ParseByteSize("3Q", &bytes));
  EXPECT_FALSE(ParseByteSize("12K3", &bytes));
}

// ---------------------------------------------------------------------------
// MemoryTracker

TEST(MemoryTrackerTest, ReserveReleaseAndHighWater) {
  MemoryTracker root("root", nullptr);
  MemoryTracker child("child", &root);
  EXPECT_TRUE(child.TryReserve(100));
  EXPECT_EQ(child.used(), 100u);
  EXPECT_EQ(root.used(), 100u);
  EXPECT_TRUE(child.TryReserve(50));
  EXPECT_EQ(child.high_water(), 150u);
  child.Release(120);
  EXPECT_EQ(child.used(), 30u);
  EXPECT_EQ(root.used(), 30u);
  EXPECT_EQ(child.high_water(), 150u);
  child.ResetHighWater();
  EXPECT_EQ(child.high_water(), 30u);
  child.Release(30);
  EXPECT_EQ(root.used(), 0u);
}

TEST(MemoryTrackerTest, ChildLimitRefusesAllOrNothing) {
  MemoryTracker root("root", nullptr);
  MemoryTracker child("child", &root, /*limit=*/100);
  EXPECT_TRUE(child.TryReserve(80));
  EXPECT_FALSE(child.TryReserve(30));  // would exceed the child limit
  EXPECT_EQ(child.used(), 80u);
  EXPECT_EQ(root.used(), 80u);  // refused charge never reached the root
  child.Release(80);
}

TEST(MemoryTrackerTest, ParentLimitRefusesAllOrNothing) {
  MemoryTracker root("root", nullptr, /*limit=*/100);
  MemoryTracker a("a", &root);
  MemoryTracker b("b", &root);
  EXPECT_TRUE(a.TryReserve(70));
  EXPECT_FALSE(b.TryReserve(40));  // fits b, not the shared root
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(root.used(), 70u);
  a.Release(70);
}

TEST(MemoryTrackerTest, UnconditionalReserveIgnoresLimit) {
  MemoryTracker root("root", nullptr, /*limit=*/10);
  root.Reserve(50);
  EXPECT_EQ(root.used(), 50u);
  EXPECT_TRUE(root.UnderPressure());
  root.Release(50);
  EXPECT_FALSE(root.UnderPressure());
}

TEST(MemoryTrackerTest, PressureThreshold) {
  MemoryTracker root("root", nullptr, /*limit=*/1000);
  root.Reserve(840);
  EXPECT_FALSE(root.UnderPressure());  // below 85%
  root.Reserve(10);
  EXPECT_TRUE(root.UnderPressure());  // at 85%
  root.Release(850);
  root.set_limit(0);
  root.Reserve(1u << 20);
  EXPECT_FALSE(root.UnderPressure());  // no limit, never under pressure
  root.Release(1u << 20);
}

// ---------------------------------------------------------------------------
// QueryContext

TEST(QueryContextTest, BudgetAbortIsTypedAndFirstWins) {
  QueryContext::Options options;
  options.memory_budget = 1000;
  QueryContext ctx(options);
  EXPECT_OK(ctx.ChargeMemory(600));
  Status refused = ctx.ChargeMemory(600);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(refused.IsGovernanceAbort());
  EXPECT_EQ(ctx.abort_reason(), QueryAbortReason::kMemoryExceeded);
  EXPECT_EQ(ctx.memory_used(), 600u);  // refused charge rolled back
  // First abort cause wins: a later Cancel does not rewrite history.
  ctx.Cancel();
  EXPECT_EQ(ctx.abort_reason(), QueryAbortReason::kMemoryExceeded);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
}

TEST(QueryContextTest, NestedQueryReservationsBalanceToZero) {
  const size_t queries_before = MemoryTracker::Queries().used();
  const size_t process_before = MemoryTracker::Process().used();
  {
    QueryContext outer;
    EXPECT_OK(outer.ChargeMemory(512));
    {
      QueryContext inner;
      EXPECT_OK(inner.ChargeMemory(256));
      EXPECT_EQ(MemoryTracker::Queries().used(), queries_before + 768);
      EXPECT_EQ(MemoryTracker::Process().used(), process_before + 768);
      // inner releases its 256 on destruction without an explicit Release.
    }
    EXPECT_EQ(MemoryTracker::Queries().used(), queries_before + 512);
    outer.ReleaseMemory(200);
    EXPECT_EQ(MemoryTracker::Queries().used(), queries_before + 312);
  }
  EXPECT_EQ(MemoryTracker::Queries().used(), queries_before);
  EXPECT_EQ(MemoryTracker::Process().used(), process_before);
}

TEST(QueryContextTest, DeadlineExpiryAbortsAtCheck) {
  QueryContext::Options options;
  options.deadline_ms = 1;
  QueryContext ctx(options);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Status expired = ctx.Check();
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(expired.IsGovernanceAbort());
  EXPECT_TRUE(ctx.IsAborted());
  EXPECT_EQ(ctx.abort_reason(), QueryAbortReason::kDeadlineExceeded);
}

TEST(QueryContextTest, CancelTripsToken) {
  QueryContext ctx;
  EXPECT_FALSE(ctx.IsAborted());
  EXPECT_OK(ctx.Check());
  ctx.Cancel();
  EXPECT_TRUE(ctx.IsAborted());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, ScopedInstallationNests) {
  EXPECT_EQ(QueryContext::Current(), nullptr);
  QueryContext outer;
  {
    ScopedQueryContext outer_scope(&outer);
    EXPECT_EQ(QueryContext::Current(), &outer);
    QueryContext inner;
    {
      ScopedQueryContext inner_scope(&inner);
      EXPECT_EQ(QueryContext::Current(), &inner);
    }
    EXPECT_EQ(QueryContext::Current(), &outer);
  }
  EXPECT_EQ(QueryContext::Current(), nullptr);
  EXPECT_OK(QueryContext::CheckCurrent());
  EXPECT_FALSE(QueryContext::CurrentAborted());
}

// ---------------------------------------------------------------------------
// AdmissionController

TEST(AdmissionControllerTest, DisabledControllerAdmitsForFree) {
  AdmissionController controller;  // max_concurrent == 0
  auto ticket = controller.Admit();
  EXPECT_OK(ticket.status());
  EXPECT_EQ(controller.running(), 0u);  // disabled path takes no slot
}

TEST(AdmissionControllerTest, SlotReleasesOnTicketDestruction) {
  AdmissionController::Config config;
  config.max_concurrent = 2;
  AdmissionController controller(config);
  {
    auto a = controller.Admit();
    ASSERT_TRUE(a.ok());
    auto b = controller.Admit();
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(controller.running(), 2u);
  }
  EXPECT_EQ(controller.running(), 0u);
}

TEST(AdmissionControllerTest, FifoOrderAcrossWaiters) {
  AdmissionController::Config config;
  config.max_concurrent = 1;
  config.queue_timeout_ms = 10000;
  AdmissionController controller(config);

  auto holder = controller.Admit();
  ASSERT_TRUE(holder.ok());

  std::mutex order_mu;
  std::vector<int> order;
  auto waiter = [&](int id) {
    auto ticket = controller.Admit();
    ASSERT_TRUE(ticket.ok());
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(id);
  };
  std::thread first(waiter, 1);
  while (controller.queued() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread second(waiter, 2);
  while (controller.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  holder.value() = AdmissionController::Ticket();  // release the slot
  first.join();
  second.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // strict FIFO: first waiter admitted first
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(controller.running(), 0u);
}

TEST(AdmissionControllerTest, QueueTimeoutRejectsTyped) {
  AdmissionController::Config config;
  config.max_concurrent = 1;
  config.queue_timeout_ms = 30;
  AdmissionController controller(config);
  auto holder = controller.Admit();
  ASSERT_TRUE(holder.ok());
  auto rejected = controller.Admit();
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(rejected.status().IsGovernanceAbort());
  EXPECT_EQ(controller.queued(), 0u);  // timed-out waiter left the queue
  holder.value() = AdmissionController::Ticket();
  auto after = controller.Admit();  // capacity is back
  EXPECT_TRUE(after.ok());
}

TEST(AdmissionControllerTest, TimedOutMiddleWaiterDoesNotStallFifo) {
  AdmissionController::Config config;
  config.max_concurrent = 1;
  config.queue_timeout_ms = 10000;
  AdmissionController controller(config);
  auto holder = controller.Admit();
  ASSERT_TRUE(holder.ok());

  // First waiter uses a context abort to leave the queue early; the second
  // (behind it in FIFO order) must still be admitted when the slot frees.
  QueryContext abort_ctx;
  Status first_status;
  std::thread first([&] {
    auto ticket = controller.Admit(&abort_ctx);
    first_status = ticket.status();
  });
  while (controller.queued() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<bool> second_admitted{false};
  std::thread second([&] {
    auto ticket = controller.Admit();
    ASSERT_TRUE(ticket.ok());
    second_admitted.store(true);
  });
  while (controller.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  abort_ctx.Cancel();
  first.join();
  EXPECT_EQ(first_status.code(), StatusCode::kCancelled);
  EXPECT_FALSE(second_admitted.load());  // slot still held
  holder.value() = AdmissionController::Ticket();
  second.join();
  EXPECT_TRUE(second_admitted.load());
}

TEST(AdmissionControllerTest, FullQueueRejectsImmediately) {
  AdmissionController::Config config;
  config.max_concurrent = 1;
  config.max_queue = 1;
  config.queue_timeout_ms = 10000;
  AdmissionController controller(config);
  auto holder = controller.Admit();
  ASSERT_TRUE(holder.ok());
  std::thread waiter([&] {
    auto ticket = controller.Admit();
    EXPECT_TRUE(ticket.ok());  // admitted once the holder releases
  });
  while (controller.queued() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto overflow = controller.Admit();  // queue already at its bound
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  holder.value() = AdmissionController::Ticket();
  waiter.join();
}

// ---------------------------------------------------------------------------
// End-to-end governance through the cache manager

class GovernanceExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateHeaderItemTables(&db_, &header_, &item_);
    int64_t next_item_id = 1;
    for (int64_t h = 1; h <= 40; ++h) {
      ASSERT_OK(InsertBusinessObject(&db_, header_, item_, h, 2000 + h % 4,
                                     /*num_items=*/8, /*amount=*/10.0,
                                     &next_item_id));
    }
  }

  void TearDown() override {
    // Tests in this fixture poke process-global knobs; restore them so
    // sibling tests start clean.
    MemoryTracker::Process().set_limit(0);
    EXPECT_EQ(MemoryTracker::Queries().used(), 0u);
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
};

TEST_F(GovernanceExecutionTest, DegradedModeReturnsIdenticalResults) {
  AggregateCacheManager cache(&db_);
  AggregateQuery query = HeaderItemQuery();
  Transaction txn = db_.Begin();

  ExecutionOptions uncached;
  uncached.strategy = ExecutionStrategy::kUncached;
  auto baseline = cache.Execute(query, txn, uncached);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Force memory pressure with headroom: park a large reservation so usage
  // crosses the 85% pressure line while the remaining megabyte still fits
  // the query's own transient charges — the regime where builds are refused
  // but uncached streaming succeeds.
  MemoryTracker::Process().set_limit(8u << 20);
  MemoryTracker::Process().Reserve(7u << 20);
  const uint64_t rejects_before =
      EngineMetrics::Get().mem_pressure_rejects->Value();
  auto degraded = cache.Execute(query, txn);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  std::string diff;
  EXPECT_TRUE(degraded->ApproxEquals(*baseline, 1e-9, &diff)) << diff;
  EXPECT_GT(EngineMetrics::Get().mem_pressure_rejects->Value(),
            rejects_before);
  EXPECT_EQ(cache.num_entries(), 0u);  // nothing was built under pressure

  // Pressure lifted: the next execution builds and caches normally.
  MemoryTracker::Process().Release(7u << 20);
  MemoryTracker::Process().set_limit(0);
  auto healthy = cache.Execute(query, txn);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_TRUE(healthy->ApproxEquals(*baseline, 1e-9, &diff)) << diff;
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST_F(GovernanceExecutionTest, CacheBytesMirrorIntoTracker) {
  AggregateCacheManager cache(&db_);
  const size_t cache_before = MemoryTracker::Cache().used();
  Transaction txn = db_.Begin();
  auto result = cache.Execute(HeaderItemQuery(), txn);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(cache.num_entries(), 1u);
  EXPECT_EQ(MemoryTracker::Cache().used(),
            cache_before + cache.total_bytes());
  cache.Clear();
  EXPECT_EQ(MemoryTracker::Cache().used(), cache_before);
}

TEST_F(GovernanceExecutionTest, ExpiredDeadlineSurfacesTypedError) {
  AggregateCacheManager cache(&db_);
  QueryContext::Options options;
  options.deadline_ms = 0.001;  // expires before the query starts
  QueryContext ctx(options);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ScopedQueryContext scope(&ctx);
  Transaction txn = db_.Begin();
  auto result = cache.Execute(HeaderItemQuery(), txn);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.status().IsGovernanceAbort());
}

TEST_F(GovernanceExecutionTest, TinyBudgetSurfacesResourceExhausted) {
  AggregateCacheManager cache(&db_);
  QueryContext::Options options;
  options.memory_budget = 1;  // the first real charge must trip it
  QueryContext ctx(options);
  ScopedQueryContext scope(&ctx);
  Transaction txn = db_.Begin();
  auto result = cache.Execute(HeaderItemQuery(), txn);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.abort_reason(), QueryAbortReason::kMemoryExceeded);
}

TEST_F(GovernanceExecutionTest, CancellationRacesCompletionSafely) {
  AggregateCacheManager cache(&db_);
  AggregateQuery query = HeaderItemQuery();
  Transaction txn = db_.Begin();
  ExecutionOptions uncached;
  uncached.strategy = ExecutionStrategy::kUncached;
  auto baseline = cache.Execute(query, txn, uncached);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Race a cancel against execution at varying points. Either outcome is
  // legal: a completed identical result, or a typed kCancelled error.
  // Never a crash, never a wrong answer, and the query reservations always
  // drain.
  for (int delay_us : {0, 20, 50, 100, 200, 500}) {
    QueryContext ctx;
    std::thread canceller([&ctx, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      ctx.Cancel();
    });
    StatusOr<AggregateResult> result = [&] {
      ScopedQueryContext scope(&ctx);
      return cache.Execute(query, txn);
    }();
    canceller.join();
    if (result.ok()) {
      std::string diff;
      EXPECT_TRUE(result->ApproxEquals(*baseline, 1e-9, &diff)) << diff;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << result.status().ToString();
    }
    EXPECT_EQ(MemoryTracker::Queries().used(), 0u);
  }
}

}  // namespace
}  // namespace aggcache
