// Tests for the CHECK macros (src/common/logging.h). The compile-shape
// tests pin down the dangling-else fix: AGGCACHE_CHECK used as the
// then-branch of an unbraced if/else must not capture the caller's `else`.

#include "common/logging.h"

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(LoggingTest, PassingCheckIsANoOp) {
  AGGCACHE_CHECK(true);
  AGGCACHE_CHECK(1 + 1 == 2) << "never evaluated";
  AGGCACHE_CHECK_EQ(2, 2);
  AGGCACHE_CHECK_NE(2, 3);
  AGGCACHE_CHECK_LT(2, 3);
  AGGCACHE_CHECK_LE(3, 3);
  AGGCACHE_CHECK_GT(3, 2);
  AGGCACHE_CHECK_GE(3, 3);
}

TEST(LoggingTest, ElseBindsToEnclosingIf) {
  // With a naive `if (cond) {} else ...` expansion, the else below would
  // bind to the macro's internal if — and run CheckFailure, aborting. With
  // the statement-shaped expansion it binds to the outer if, as written.
  bool else_taken = false;
  if (false)
    AGGCACHE_CHECK(false) << "must not evaluate";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);

  // And a passing check as a then-branch must swallow the else entirely.
  bool passed_through = false;
  if (true)
    AGGCACHE_CHECK(true);
  else
    passed_through = true;
  EXPECT_FALSE(passed_through);
}

TEST(LoggingDeathTest, FailingCheckAbortsWithMessage) {
  EXPECT_DEATH(AGGCACHE_CHECK(false) << "boom " << 42,
               "CHECK failed at .*: false boom 42");
  EXPECT_DEATH(AGGCACHE_CHECK_EQ(1, 2), "\\(1\\) == \\(2\\)");
}

}  // namespace
}  // namespace aggcache
