#include "objectaware/predicate_pushdown.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class PredicatePushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    // 10 merged business objects, then 3 new ones and one late item so the
    // Header_main x Item_delta subjoin is non-prunable.
    for (int64_t h = 1; h <= 10; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2013, 2, 1.0, &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
    for (int64_t h = 11; h <= 13; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2013, 2, 1.0, &next_item_id_));
    }
    Transaction txn = db_.Begin();
    ASSERT_OK(item_->Insert(
        txn, {Value(next_item_id_++), Value(int64_t{10}), Value(1.0)}));
  }

  BoundQuery Bind() {
    auto bound = BoundQuery::Bind(db_, query_);
    AGGCACHE_CHECK(bound.ok());
    return std::move(bound).value();
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1;
  AggregateQuery query_ = testing_util::HeaderItemQuery();
};

TEST_F(PredicatePushdownTest, DerivesRangeFiltersAcrossMainDelta) {
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  SubjoinCombination main_delta = {{0, PartitionKind::kMain},
                                   {0, PartitionKind::kDelta}};
  std::vector<FilterPredicate> filters =
      DerivePushdownFilters(bound, mds, main_delta);
  // One MD edge crossing main/delta: two bounds per side.
  ASSERT_EQ(filters.size(), 4u);
  for (const FilterPredicate& f : filters) {
    EXPECT_EQ(f.column, "tid_Header");
    EXPECT_TRUE(f.op == CompareOp::kGe || f.op == CompareOp::kLe);
  }
  // The Header-side filter restricts to the delta's tid range.
  const Dictionary& delta_tids =
      item_->group(0).delta.column(2).dictionary();
  bool found_ge = false;
  for (const FilterPredicate& f : filters) {
    if (f.table_index == 0 && f.op == CompareOp::kGe) {
      EXPECT_EQ(f.operand, delta_tids.min_value());
      found_ge = true;
    }
  }
  EXPECT_TRUE(found_ge);
}

TEST_F(PredicatePushdownTest, NoFiltersForSameKindPairs) {
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  SubjoinCombination delta_delta = {{0, PartitionKind::kDelta},
                                    {0, PartitionKind::kDelta}};
  EXPECT_TRUE(DerivePushdownFilters(bound, mds, delta_delta).empty());
  SubjoinCombination main_main = {{0, PartitionKind::kMain},
                                  {0, PartitionKind::kMain}};
  EXPECT_TRUE(DerivePushdownFilters(bound, mds, main_main).empty());
}

TEST_F(PredicatePushdownTest, NoFiltersWhenSideEmpty) {
  // Fresh database: deltas empty.
  Database db;
  Table* h = nullptr;
  Table* i = nullptr;
  testing_util::CreateHeaderItemTables(&db, &h, &i);
  auto bound = BoundQuery::Bind(db, query_);
  ASSERT_TRUE(bound.ok());
  std::vector<MdBinding> mds = ResolveMds(*bound);
  SubjoinCombination main_delta = {{0, PartitionKind::kMain},
                                   {0, PartitionKind::kDelta}};
  EXPECT_TRUE(DerivePushdownFilters(*bound, mds, main_delta).empty());
}

TEST_F(PredicatePushdownTest, PushdownPreservesSubjoinResult) {
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  Executor executor(&db_);
  Snapshot now = db_.txn_manager().GlobalSnapshot();
  for (const SubjoinCombination& combo :
       EnumerateAllCombinations(bound.tables)) {
    std::vector<FilterPredicate> filters =
        DerivePushdownFilters(bound, mds, combo);
    auto plain = executor.ExecuteSubjoin(bound, combo, now);
    auto pushed = executor.ExecuteSubjoin(bound, combo, now, filters);
    ASSERT_TRUE(plain.ok() && pushed.ok());
    std::string diff;
    EXPECT_TRUE(plain->ApproxEquals(*pushed, 1e-9, &diff))
        << CombinationToString(combo) << ": " << diff;
  }
}

TEST_F(PredicatePushdownTest, PushdownReducesScannedRows) {
  BoundQuery bound = Bind();
  std::vector<MdBinding> mds = ResolveMds(bound);
  Snapshot now = db_.txn_manager().GlobalSnapshot();
  // Header_delta x Item_main: only one late item in main matches; the
  // pushdown bounds Item_main's hash-build input by the delta tid range.
  SubjoinCombination delta_main = {{0, PartitionKind::kDelta},
                                   {0, PartitionKind::kMain}};
  Executor plain_exec(&db_);
  auto plain = plain_exec.ExecuteSubjoin(bound, delta_main, now);
  ASSERT_TRUE(plain.ok());
  uint64_t selected_plain = plain_exec.stats().Snapshot().rows_selected;

  Executor pushed_exec(&db_);
  std::vector<FilterPredicate> filters =
      DerivePushdownFilters(bound, mds, delta_main);
  auto pushed = pushed_exec.ExecuteSubjoin(bound, delta_main, now, filters);
  ASSERT_TRUE(pushed.ok());
  uint64_t selected_pushed = pushed_exec.stats().Snapshot().rows_selected;
  EXPECT_LT(selected_pushed, selected_plain);
}

}  // namespace
}  // namespace aggcache
