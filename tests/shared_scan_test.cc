// Cooperative shared delta scans: N concurrent consumers over one delta
// partition must each receive exactly the selection vector a solo
// SelectRowsRange would produce, regardless of who leads, who attaches,
// and where in the block walk the attach lands. Run under
// -DAGGCACHE_SANITIZE=thread to validate the session protocol.

#include "query/shared_scan.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "query/executor.h"
#include "query/vector_kernels.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class SharedScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    // Enough delta rows for several 1024-row blocks, so followers can
    // attach mid-walk and exercise the prefix self-scan path.
    Transaction txn = db_.Begin();
    for (int64_t h = 1; h <= kHeaders; ++h) {
      ASSERT_OK(header_->Insert(txn, {Value(h), Value(2010 + h % 5)}));
    }
    snapshot_ = db_.txn_manager().GlobalSnapshot();
  }

  void TearDown() override {
    SharedScanManager::OverrideEnabledForTest(-1);
    ThreadPool::SetGlobalParallelism(1);
  }

  SelectionInput InputFor(const CompiledColumnFilter* filter) const {
    SelectionInput input;
    input.snapshot = &snapshot_;
    if (filter != nullptr) {
      input.filters = std::span<const CompiledColumnFilter>(filter, 1);
    }
    return input;
  }

  static constexpr int64_t kHeaders = 6000;  // ~6 selection blocks.

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  Snapshot snapshot_;
};

TEST_F(SharedScanTest, SoloScanLeadsAndMatchesSelectRowsRange) {
  const Partition& delta = header_->group(0).delta;
  ASSERT_GE(delta.num_rows(), SharedScanManager::kMinRows);

  Value operand(int64_t{2012});
  CompiledColumnFilter filter;
  ASSERT_TRUE(CompileColumnFilter(delta.column(1), CompareOp::kEq, operand,
                                  &filter));
  SelectionInput input = InputFor(&filter);

  std::vector<uint32_t> expected;
  SelectRowsRange(delta, input, 0, static_cast<uint32_t>(delta.num_rows()),
                  &expected);
  ASSERT_FALSE(expected.empty());

  std::vector<uint32_t> got;
  SharedScanManager::Result result =
      SharedScanManager::Instance().Scan(delta, input, &got);
  EXPECT_TRUE(result.led);
  EXPECT_FALSE(result.attached);
  EXPECT_GT(result.batches, 0u);
  EXPECT_EQ(got, expected);
}

TEST_F(SharedScanTest, ConcurrentConsumersWithDistinctFiltersAgree) {
  const Partition& delta = header_->group(0).delta;
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;

  // One filter per year; threads cycle through them so concurrent
  // consumers of one session carry different predicates.
  std::vector<Value> operands;
  std::vector<CompiledColumnFilter> filters(5);
  operands.reserve(5);
  for (int y = 0; y < 5; ++y) {
    operands.emplace_back(int64_t{2010 + y});
    ASSERT_TRUE(CompileColumnFilter(delta.column(1), CompareOp::kEq,
                                    operands.back(), &filters[y]));
  }
  std::vector<std::vector<uint32_t>> expected(5);
  for (int y = 0; y < 5; ++y) {
    SelectionInput input = InputFor(&filters[y]);
    SelectRowsRange(delta, input, 0,
                    static_cast<uint32_t>(delta.num_rows()), &expected[y]);
    ASSERT_FALSE(expected[y].empty());
  }

  std::atomic<size_t> leads{0};
  std::atomic<size_t> attaches{0};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        int year = (t + round) % 5;
        SelectionInput input = InputFor(&filters[year]);
        std::vector<uint32_t> got;
        SharedScanManager::Result result =
            SharedScanManager::Instance().Scan(delta, input, &got);
        if (result.led) leads.fetch_add(1);
        if (result.attached) attaches.fetch_add(1);
        if (result.led == result.attached) mismatches.fetch_add(1);
        if (got != expected[year]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0u);
  // Every scan either led a session or attached to one — never both,
  // never neither.
  EXPECT_EQ(leads.load() + attaches.load(),
            static_cast<size_t>(kThreads) * kRounds);
  EXPECT_GE(leads.load(), 1u);
}

TEST_F(SharedScanTest, UnfilteredConsumersSeeEveryVisibleRow) {
  const Partition& delta = header_->group(0).delta;
  SelectionInput input = InputFor(nullptr);
  std::vector<uint32_t> expected;
  SelectRowsRange(delta, input, 0, static_cast<uint32_t>(delta.num_rows()),
                  &expected);

  constexpr int kThreads = 4;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        SelectionInput in = InputFor(nullptr);
        std::vector<uint32_t> got;
        SharedScanManager::Instance().Scan(delta, in, &got);
        if (got != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST_F(SharedScanTest, EnabledOverrideControlsGate) {
  SharedScanManager::OverrideEnabledForTest(0);
  EXPECT_FALSE(SharedScanManager::Enabled());
  SharedScanManager::OverrideEnabledForTest(1);
  EXPECT_TRUE(SharedScanManager::Enabled());
  SharedScanManager::OverrideEnabledForTest(-1);
  // Default (no AGGCACHE_SHARED_SCAN in the test environment): enabled.
  EXPECT_TRUE(SharedScanManager::Enabled());
}

TEST_F(SharedScanTest, ConcurrentExecutorQueriesMatchSharedScanOffBaseline) {
  ThreadPool::SetGlobalParallelism(4);
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .GroupBy("Header", "FiscalYear")
                             .CountStar("n")
                             .Build();

  SharedScanManager::OverrideEnabledForTest(0);
  Executor baseline_executor(&db_);
  auto baseline = baseline_executor.ExecuteUncached(query, snapshot_);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ExecutorStats off_stats = baseline_executor.stats().Snapshot();
  EXPECT_EQ(off_stats.shared_scan_leads, 0u);
  EXPECT_EQ(off_stats.shared_scan_attaches, 0u);

  SharedScanManager::OverrideEnabledForTest(1);
  constexpr int kThreads = 6;
  std::atomic<size_t> mismatches{0};
  std::atomic<uint64_t> leads{0};
  std::atomic<uint64_t> attaches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Executor executor(&db_);
      for (int round = 0; round < 8; ++round) {
        auto result = executor.ExecuteUncached(query, snapshot_);
        if (!result.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        std::string diff;
        if (!result->ApproxEquals(*baseline, 1e-9, &diff)) {
          mismatches.fetch_add(1);
        }
      }
      ExecutorStats stats = executor.stats().Snapshot();
      leads.fetch_add(stats.shared_scan_leads);
      attaches.fetch_add(stats.shared_scan_attaches);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0u);
  // Every query scanned the (large) Header delta cooperatively: each scan
  // is accounted as exactly one lead or one attach.
  EXPECT_EQ(leads.load() + attaches.load(),
            static_cast<uint64_t>(kThreads) * 8);
}

}  // namespace
}  // namespace aggcache
