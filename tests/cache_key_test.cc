#include "cache/cache_key.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

TEST(CacheKeyTest, EqualQueriesProduceEqualKeys) {
  AggregateQuery a = testing_util::HeaderItemQuery();
  AggregateQuery b = testing_util::HeaderItemQuery();
  CacheKey ka = MakeCacheKey(a);
  CacheKey kb = MakeCacheKey(b);
  EXPECT_EQ(ka, kb);
  EXPECT_EQ(ka.hash, kb.hash);
  EXPECT_EQ(CacheKeyHash()(ka), ka.hash);
}

TEST(CacheKeyTest, DifferentFiltersDifferentKeys) {
  AggregateQuery a = testing_util::HeaderItemQuery();
  AggregateQuery b = a;
  b.filters.push_back(FilterPredicate{0, "FiscalYear", CompareOp::kEq,
                                      Value(int64_t{2013})});
  EXPECT_FALSE(MakeCacheKey(a) == MakeCacheKey(b));
}

TEST(CacheKeyTest, DifferentOperandsDifferentKeys) {
  AggregateQuery a = testing_util::HeaderItemQuery();
  a.filters.push_back(FilterPredicate{0, "FiscalYear", CompareOp::kEq,
                                      Value(int64_t{2013})});
  AggregateQuery b = testing_util::HeaderItemQuery();
  b.filters.push_back(FilterPredicate{0, "FiscalYear", CompareOp::kEq,
                                      Value(int64_t{2014})});
  EXPECT_FALSE(MakeCacheKey(a) == MakeCacheKey(b));
}

TEST(CacheKeyTest, DifferentAggregatesDifferentKeys) {
  AggregateQuery a = testing_util::HeaderItemQuery();
  AggregateQuery b = a;
  b.aggregates[0].fn = AggregateFunction::kAvg;
  EXPECT_FALSE(MakeCacheKey(a) == MakeCacheKey(b));
}

TEST(CacheKeyTest, DifferentGroupByDifferentKeys) {
  AggregateQuery a = testing_util::HeaderItemQuery();
  AggregateQuery b = a;
  b.group_by[0].column = "HeaderID";
  EXPECT_FALSE(MakeCacheKey(a) == MakeCacheKey(b));
}

}  // namespace
}  // namespace aggcache
