#include "objectaware/matching_dependency.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class MatchingDependencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1;
};

TEST_F(MatchingDependencyTest, ResolvesHeaderItemMd) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  std::vector<MdBinding> mds = ResolveMds(*bound);
  ASSERT_EQ(mds.size(), 1u);
  EXPECT_EQ(mds[0].join_index, 0u);
  EXPECT_EQ(mds[0].left_table, 0u);   // Header (pk side).
  EXPECT_EQ(mds[0].right_table, 1u);  // Item (fk side).
  // Header columns: HeaderID, FiscalYear, tid_Header -> index 2.
  EXPECT_EQ(mds[0].left_tid_column, 2u);
  // Item columns: ItemID, HeaderID, tid_Header, Amount, tid_Item -> 2.
  EXPECT_EQ(mds[0].right_tid_column, 2u);
  EXPECT_NE(mds[0].ToString().find("MD(join#0"), std::string::npos);
}

TEST_F(MatchingDependencyTest, ResolvesRegardlessOfJoinDirection) {
  // Item first: the join condition is written Item.HeaderID =
  // Header.HeaderID but the MD must still resolve with Header as pk side.
  AggregateQuery query = QueryBuilder()
                             .From("Item")
                             .Join("Header", "HeaderID", "HeaderID")
                             .GroupBy("Header", "FiscalYear")
                             .Sum("Item", "Amount", "s")
                             .Build();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  std::vector<MdBinding> mds = ResolveMds(*bound);
  ASSERT_EQ(mds.size(), 1u);
  EXPECT_EQ(mds[0].left_table, 1u);   // Header is query table 1 here.
  EXPECT_EQ(mds[0].right_table, 0u);  // Item.
}

TEST_F(MatchingDependencyTest, NoMdWithoutTidColumns) {
  Database db;
  auto h = db.CreateTable(SchemaBuilder("H")
                              .AddColumn("id", ColumnType::kInt64)
                              .PrimaryKey()
                              .Build());
  ASSERT_TRUE(h.ok());
  auto i = db.CreateTable(SchemaBuilder("I")
                              .AddColumn("id", ColumnType::kInt64)
                              .PrimaryKey()
                              .AddColumn("h_id", ColumnType::kInt64)
                              .References("H")  // FK without MD tid.
                              .AddColumn("v", ColumnType::kInt64)
                              .Build());
  ASSERT_TRUE(i.ok());
  AggregateQuery query = QueryBuilder()
                             .From("H")
                             .Join("I", "id", "h_id")
                             .GroupBy("H", "id")
                             .Sum("I", "v", "s")
                             .Build();
  auto bound = BoundQuery::Bind(db, query);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(ResolveMds(*bound).empty());
}

TEST_F(MatchingDependencyTest, NoMdForNonKeyJoin) {
  // Join on a non-pk column of Header: no MD applies.
  AggregateQuery query = QueryBuilder()
                             .From("Header")
                             .Join("Item", "FiscalYear", "ItemID")
                             .GroupBy("Header", "FiscalYear")
                             .CountStar("n")
                             .Build();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(ResolveMds(*bound).empty());
}

TEST_F(MatchingDependencyTest, VerifyMdHoldsOnTransactionalInserts) {
  for (int64_t h = 1; h <= 5; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, h,
                                                 2013, 3, 1.0,
                                                 &next_item_id_));
  }
  auto holds = VerifyMdHolds(db_, "Header", "Item");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
  // Still holds across a merge and new inserts.
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 6,
                                               2014, 2, 1.0,
                                               &next_item_id_));
  holds = VerifyMdHolds(db_, "Header", "Item");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
}

TEST_F(MatchingDependencyTest, MdHoldsAcrossHeaderUpdates) {
  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 1, 2013,
                                               3, 1.0, &next_item_id_));
  Transaction txn = db_.Begin();
  // Updating the header preserves its object tid, so the MD keeps holding.
  ASSERT_OK(header_->UpdateByPk(txn, Value(int64_t{1}),
                                {Value(int64_t{1}), Value(int64_t{2099})}));
  auto holds = VerifyMdHolds(db_, "Header", "Item");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
}

TEST_F(MatchingDependencyTest, ViolatedMdDetected) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{1}), Value(int64_t{2013})}));
  InsertOptions no_md;
  no_md.maintain_tid_columns = false;
  ASSERT_OK(item_->Insert(
      txn, {Value(int64_t{1}), Value(int64_t{1}), Value(1.0)}, no_md));
  auto holds = VerifyMdHolds(db_, "Header", "Item");
  ASSERT_TRUE(holds.ok());
  EXPECT_FALSE(*holds);
}

TEST_F(MatchingDependencyTest, VerifyRequiresMdSchema) {
  EXPECT_FALSE(VerifyMdHolds(db_, "Item", "Header").ok());
}

}  // namespace
}  // namespace aggcache
