#include "storage/delta_merge.h"

#include "gtest/gtest.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

using testing_util::CreateHeaderItemTables;

class DeltaMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreateHeaderItemTables(&db_, &header_, &item_);
    for (int64_t h = 1; h <= 10; ++h) {
      Transaction txn = db_.Begin();
      ASSERT_OK(header_->Insert(txn, {Value(h), Value(int64_t{2013})}));
    }
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
};

TEST_F(DeltaMergeTest, MovesDeltaRowsIntoMain) {
  EXPECT_EQ(header_->group(0).delta.num_rows(), 10u);
  EXPECT_EQ(header_->group(0).main.num_rows(), 0u);
  ASSERT_OK(db_.Merge("Header"));
  EXPECT_EQ(header_->group(0).delta.num_rows(), 0u);
  EXPECT_EQ(header_->group(0).main.num_rows(), 10u);
  // Data preserved, pk index rebuilt to main locations.
  auto loc = header_->FindByPk(Value(int64_t{3}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->kind, PartitionKind::kMain);
  EXPECT_EQ(header_->ValueAt(*loc, 1), Value(int64_t{2013}));
}

TEST_F(DeltaMergeTest, MainDictionariesAreSorted) {
  ASSERT_OK(db_.Merge("Header"));
  const Dictionary& dict =
      header_->group(0).main.column(0).dictionary();
  EXPECT_EQ(dict.mode(), Dictionary::Mode::kSortedMain);
  EXPECT_EQ(dict.min_value(), Value(int64_t{1}));
  EXPECT_EQ(dict.max_value(), Value(int64_t{10}));
  for (size_t i = 1; i < dict.size(); ++i) {
    EXPECT_TRUE(dict.value(i - 1) < dict.value(i));
  }
}

TEST_F(DeltaMergeTest, CreateTidsSurviveMerge) {
  Tid first_tid = header_->group(0).delta.create_tid(0);
  ASSERT_OK(db_.Merge("Header"));
  EXPECT_EQ(header_->group(0).main.create_tid(0), first_tid);
}

TEST_F(DeltaMergeTest, DropsInvalidatedRowsByDefault) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{5})));
  ASSERT_OK(db_.Merge("Header"));
  EXPECT_EQ(header_->group(0).main.num_rows(), 9u);
  EXPECT_FALSE(header_->FindByPk(Value(int64_t{5})).has_value());
  EXPECT_EQ(header_->MainInvalidationCount(), 0u);
}

TEST_F(DeltaMergeTest, KeepInvalidatedRetainsHistory) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{5})));
  MergeOptions options;
  options.keep_invalidated = true;
  ASSERT_OK(db_.Merge("Header", options));
  EXPECT_EQ(header_->group(0).main.num_rows(), 10u);
  EXPECT_EQ(header_->MainInvalidationCount(), 1u);
  // Visible count excludes the historical row; the pk index does too.
  EXPECT_EQ(header_->VisibleRows(db_.txn_manager().GlobalSnapshot()), 9u);
  EXPECT_FALSE(header_->FindByPk(Value(int64_t{5})).has_value());
  // An old snapshot can still see the deleted row (temporal queries).
  EXPECT_EQ(header_->VisibleRows(Snapshot{txn.tid() - 1}), 10u);
}

TEST_F(DeltaMergeTest, SecondMergeAppendsNewDelta) {
  ASSERT_OK(db_.Merge("Header"));
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{11}), Value(int64_t{2014})}));
  ASSERT_OK(db_.Merge("Header"));
  EXPECT_EQ(header_->group(0).main.num_rows(), 11u);
  EXPECT_EQ(header_->group(0).delta.num_rows(), 0u);
}

TEST_F(DeltaMergeTest, UpdateInMainThenMerge) {
  ASSERT_OK(db_.Merge("Header"));
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->UpdateByPk(txn, Value(int64_t{2}),
                                {Value(int64_t{2}), Value(int64_t{2020})}));
  EXPECT_EQ(header_->MainInvalidationCount(), 1u);
  ASSERT_OK(db_.Merge("Header"));
  EXPECT_EQ(header_->group(0).main.num_rows(), 10u);
  auto loc = header_->FindByPk(Value(int64_t{2}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(header_->ValueAt(*loc, 1), Value(int64_t{2020}));
}

TEST_F(DeltaMergeTest, GroupIndexOutOfRange) {
  MergeOptions options;
  EXPECT_EQ(MergeTableGroup(*header_, 5, options).code(),
            StatusCode::kOutOfRange);
}

TEST(MainPartitionBuilderTest, BuildsEmptyPartition) {
  TableSchema schema = SchemaBuilder("T")
                           .AddColumn("a", ColumnType::kInt64)
                           .Build();
  MainPartitionBuilder builder(schema);
  Partition main = builder.Build();
  EXPECT_EQ(main.num_rows(), 0u);
  EXPECT_EQ(main.kind(), PartitionKind::kMain);
}

}  // namespace
}  // namespace aggcache
