#include "common/status.h"

#include <string>

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("no such table");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such table");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: no such table");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::InvalidArgument("bad");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  ASSIGN_OR_RETURN(int value, ParsePositive(x));
  *out = value * 2;
  return Status::Ok();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  Status status = UseAssignOrReturn(-1, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

Status UseReturnIfError(bool fail) {
  RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::Ok());
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace aggcache
