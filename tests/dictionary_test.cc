#include "storage/dictionary.h"

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(DictionaryTest, DeltaGetOrAddAssignsDenseCodes) {
  Dictionary dict(ColumnType::kInt64, Dictionary::Mode::kUnsortedDelta);
  auto a = dict.GetOrAdd(Value(int64_t{10}));
  auto b = dict.GetOrAdd(Value(int64_t{20}));
  auto c = dict.GetOrAdd(Value(int64_t{10}));  // Duplicate.
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(*c, 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.value(0), Value(int64_t{10}));
  EXPECT_EQ(dict.value(1), Value(int64_t{20}));
}

TEST(DictionaryTest, DeltaRejectsNullAndTypeMismatch) {
  Dictionary dict(ColumnType::kInt64, Dictionary::Mode::kUnsortedDelta);
  EXPECT_EQ(dict.GetOrAdd(Value()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dict.GetOrAdd(Value("string")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DictionaryTest, DeltaTracksMinMaxIncrementally) {
  Dictionary dict(ColumnType::kInt64, Dictionary::Mode::kUnsortedDelta);
  ASSERT_TRUE(dict.GetOrAdd(Value(int64_t{5})).ok());
  EXPECT_EQ(dict.min_value(), Value(int64_t{5}));
  EXPECT_EQ(dict.max_value(), Value(int64_t{5}));
  ASSERT_TRUE(dict.GetOrAdd(Value(int64_t{2})).ok());
  ASSERT_TRUE(dict.GetOrAdd(Value(int64_t{9})).ok());
  ASSERT_TRUE(dict.GetOrAdd(Value(int64_t{7})).ok());
  EXPECT_EQ(dict.min_value(), Value(int64_t{2}));
  EXPECT_EQ(dict.max_value(), Value(int64_t{9}));
}

TEST(DictionaryTest, SortedMainIsValueOrdered) {
  Dictionary dict = Dictionary::BuildSorted(
      ColumnType::kInt64,
      {Value(int64_t{30}), Value(int64_t{10}), Value(int64_t{20}),
       Value(int64_t{10})});
  EXPECT_EQ(dict.size(), 3u);  // De-duplicated.
  EXPECT_EQ(dict.value(0), Value(int64_t{10}));
  EXPECT_EQ(dict.value(1), Value(int64_t{20}));
  EXPECT_EQ(dict.value(2), Value(int64_t{30}));
  EXPECT_EQ(dict.min_value(), Value(int64_t{10}));
  EXPECT_EQ(dict.max_value(), Value(int64_t{30}));
}

TEST(DictionaryTest, SortedMainIsImmutable) {
  Dictionary dict = Dictionary::BuildSorted(ColumnType::kInt64,
                                            {Value(int64_t{1})});
  EXPECT_EQ(dict.GetOrAdd(Value(int64_t{2})).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DictionaryTest, Find) {
  Dictionary dict = Dictionary::BuildSorted(
      ColumnType::kString, {Value("b"), Value("a"), Value("c")});
  EXPECT_EQ(*dict.Find(Value("a")), 0u);
  EXPECT_EQ(*dict.Find(Value("c")), 2u);
  EXPECT_FALSE(dict.Find(Value("z")).has_value());
}

TEST(DictionaryTest, StringMinMax) {
  Dictionary dict(ColumnType::kString, Dictionary::Mode::kUnsortedDelta);
  ASSERT_TRUE(dict.GetOrAdd(Value("mango")).ok());
  ASSERT_TRUE(dict.GetOrAdd(Value("apple")).ok());
  ASSERT_TRUE(dict.GetOrAdd(Value("zebra")).ok());
  EXPECT_EQ(dict.min_value(), Value("apple"));
  EXPECT_EQ(dict.max_value(), Value("zebra"));
}

TEST(DictionaryTest, EmptySortedDictionary) {
  Dictionary dict = Dictionary::BuildSorted(ColumnType::kInt64, {});
  EXPECT_TRUE(dict.empty());
  EXPECT_EQ(dict.size(), 0u);
  EXPECT_FALSE(dict.Find(Value(int64_t{1})).has_value());
}

TEST(DictionaryTest, ByteSizeGrowsWithContent) {
  Dictionary small(ColumnType::kString, Dictionary::Mode::kUnsortedDelta);
  ASSERT_TRUE(small.GetOrAdd(Value("a")).ok());
  Dictionary large(ColumnType::kString, Dictionary::Mode::kUnsortedDelta);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(large.GetOrAdd(Value("value-" + std::to_string(i))).ok());
  }
  EXPECT_GT(large.ByteSize(), small.ByteSize());
}

}  // namespace
}  // namespace aggcache
