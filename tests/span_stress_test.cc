// Concurrency stress for the span recorder. Lives in the parallel_tests
// binary so the TSAN CI job covers the lock-free publication path: the
// seq-unpublish / payload / seq-publish discipline, segment lease and
// release under contention, and harvesting concurrently with writers.
// Functional span tests (goldens, RAII semantics, tree reconciliation)
// live in tests/span_test.cc under the obs_tests binary.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <latch>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/span.h"

namespace aggcache {
namespace {

SpanRecorder::Options StressOptions(size_t spans_per_segment,
                                    size_t max_segments) {
  SpanRecorder::Options options;
  options.spans_per_segment = spans_per_segment;
  options.max_segments = max_segments;
  options.enabled = true;
  return options;
}

TEST(SpanStressTest, ConcurrentWritersPublishTornFreeSpans) {
  // Each writer tags every field of its spans with its thread index, so a
  // torn slot (payload words from two different writers, or a seq from a
  // third) is detectable after the fact.
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  SpanRecorder recorder(StressOptions(1024, kThreads + 1));
  // Every writer leases its segment (first Record) and then waits for the
  // others, so all segments are live simultaneously even on a single-core
  // host where threads would otherwise run back-to-back and share one.
  std::latch leased(kThreads);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, &leased, t] {
      const uint64_t tag = static_cast<uint64_t>(t);
      auto record = [&](uint64_t i) {
        uint64_t now = recorder.NowMicros();
        recorder.Record(SpanKind::kSubjoinTask, /*span_id=*/(tag << 32) | i,
                        /*parent_id=*/(tag << 32) | i,
                        /*query_id=*/tag + 1, now, now + 1, "stress");
      };
      record(0);
      leased.arrive_and_wait();
      for (uint64_t i = 1; i < kPerThread; ++i) record(i);
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(recorder.recorded_spans(), kThreads * kPerThread);
  EXPECT_EQ(recorder.lost_spans(), 0u);
  std::vector<SpanRecorder::Span> spans = recorder.Collect();
  EXPECT_EQ(spans.size(), static_cast<size_t>(kThreads) * 1024)
      << "every segment ring full after wraparound";
  std::set<uint64_t> seqs;
  for (const SpanRecorder::Span& span : spans) {
    EXPECT_TRUE(seqs.insert(span.seq).second) << "duplicate seq";
    EXPECT_LE(span.seq, kThreads * kPerThread);
    uint64_t tag = span.span_id >> 32;
    ASSERT_LT(tag, static_cast<uint64_t>(kThreads));
    EXPECT_EQ(span.parent_id, span.span_id) << "torn slot: ids disagree";
    EXPECT_EQ(span.query_id, tag + 1) << "torn slot: query id from another "
                                         "writer";
    EXPECT_EQ(span.kind, SpanKind::kSubjoinTask);
    EXPECT_EQ(span.dur_us, 1u);
    EXPECT_STREQ(span.detail, "stress");
  }
  EXPECT_TRUE(std::is_sorted(spans.begin(), spans.end(),
                             [](const SpanRecorder::Span& x,
                                const SpanRecorder::Span& y) {
                               return x.seq < y.seq;
                             }));
}

TEST(SpanStressTest, HarvestingWhileWritingNeverYieldsTornSlots) {
  // Collect() must be safe against writers mid-publication: slots observed
  // torn are discarded, never returned half-written. The harvester races
  // the writers for the whole run and validates every span it sees.
  constexpr int kThreads = 3;
  constexpr uint64_t kPerThread = 20000;
  SpanRecorder recorder(StressOptions(256, kThreads + 1));
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      const uint64_t tag = static_cast<uint64_t>(t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t now = recorder.NowMicros();
        recorder.Record(SpanKind::kSubjoinTask, (tag << 32) | i,
                        (tag << 32) | i, tag + 1, now, now);
      }
    });
  }
  uint64_t harvested = 0;
  std::thread harvester([&recorder, &done, &harvested] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<SpanRecorder::Span> spans = recorder.Collect(512);
      harvested += spans.size();
      for (const SpanRecorder::Span& span : spans) {
        uint64_t tag = span.span_id >> 32;
        ASSERT_LT(tag, static_cast<uint64_t>(kThreads));
        ASSERT_EQ(span.parent_id, span.span_id);
        ASSERT_EQ(span.query_id, tag + 1);
      }
    }
  });
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  harvester.join();
  EXPECT_GT(harvested, 0u) << "harvester never saw a published span";
  EXPECT_EQ(recorder.recorded_spans(), kThreads * kPerThread);
}

TEST(SpanStressTest, SegmentExhaustionCountsLossesWithoutCorruption) {
  // More writers than segments: the starved writers' spans are counted as
  // lost, and the winners' spans remain intact.
  constexpr int kThreads = 6;
  constexpr size_t kSegments = 2;
  constexpr uint64_t kPerThread = 2000;
  SpanRecorder recorder(StressOptions(64, kSegments));
  std::latch start(kThreads);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, &start, t] {
      start.arrive_and_wait();
      const uint64_t tag = static_cast<uint64_t>(t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t now = recorder.NowMicros();
        recorder.Record(SpanKind::kSubjoinTask, (tag << 32) | i,
                        (tag << 32) | i, tag + 1, now, now);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  // Every span is accounted for exactly once, recorded or lost. (How the
  // total splits depends on scheduling; with only two segments at least
  // the slotless overflow threads must have lost everything they wrote
  // while all segments were leased.)
  EXPECT_EQ(recorder.recorded_spans() + recorder.lost_spans(),
            kThreads * kPerThread);
  for (const SpanRecorder::Span& span : recorder.Collect()) {
    uint64_t tag = span.span_id >> 32;
    ASSERT_LT(tag, static_cast<uint64_t>(kThreads));
    EXPECT_EQ(span.parent_id, span.span_id);
    EXPECT_EQ(span.query_id, tag + 1);
  }
}

TEST(SpanStressTest, ScopedSpanFanOutAcrossThreadsChainsOneParent) {
  // The RAII layer under contention: one sampled root, many workers opening
  // cross-thread children against it through SpanLink — the exact shape of
  // a ParallelFor subjoin fan-out. Exercises NextSpanId contention and the
  // thread-local current-span save/restore on every worker.
  SpanRecorder& global = SpanRecorder::Global();
  bool was_enabled = global.enabled();
  global.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  uint64_t root_query = 0;
  uint64_t root_span = 0;
  {
    QueryRootSpan root("stress");
    ASSERT_TRUE(root.active());
    SpanLink link = root.link();
    root_query = link.query_id;
    root_span = link.span_id;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([link] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          ScopedSpan task(SpanKind::kSubjoinTask, link, "fanout");
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  global.set_enabled(was_enabled);

  int tasks = 0;
  bool saw_root = false;
  for (const SpanRecorder::Span& span : global.Collect()) {
    if (span.query_id != root_query) continue;
    if (span.span_id == root_span) {
      saw_root = true;
      EXPECT_EQ(span.kind, SpanKind::kQuery);
      continue;
    }
    EXPECT_EQ(span.kind, SpanKind::kSubjoinTask);
    EXPECT_EQ(span.parent_id, root_span);
    ++tasks;
  }
  EXPECT_TRUE(saw_root);
  // Global() is sized from the environment (possibly small); wraparound may
  // have evicted early tasks but whatever survives must be intact, and on
  // the default 4096-slot segments everything fits.
  EXPECT_GT(tasks, 0);
  EXPECT_LE(tasks, kThreads * kSpansPerThread);
}

}  // namespace
}  // namespace aggcache
