#include "workload/trace.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_ = std::make_unique<AggregateCacheManager>(&db_);
    replayer_ = std::make_unique<TraceReplayer>(&db_, cache_.get());
  }

  Database db_;
  std::unique_ptr<AggregateCacheManager> cache_;
  std::unique_ptr<TraceReplayer> replayer_;
};

constexpr const char* kSetupTrace = R"(
# Build the object-aware header/item schema and load a little data.
CREATE TABLE Header (
  HeaderID BIGINT PRIMARY KEY,
  FiscalYear BIGINT,
  OWN TID tid_Header
);
CREATE TABLE Item (
  ItemID BIGINT PRIMARY KEY,
  HeaderID BIGINT REFERENCES Header TID tid_Header,
  Amount DOUBLE,
  OWN TID tid_Item
);
INSERT INTO Header VALUES (1, 2013);
INSERT INTO Item VALUES (10, 1, 12.5);
INSERT INTO Item VALUES (11, 1, 7.5);
INSERT INTO Header VALUES (2, 2014);
INSERT INTO Item VALUES (20, 2, 30.0);
)";

TEST_F(TraceTest, ReplaysDdlInsertsQueriesAndMerges) {
  std::string trace = std::string(kSetupTrace) + R"(
!merge
SELECT FiscalYear, SUM(Amount) AS revenue FROM Header, Item
WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear;
INSERT INTO Header VALUES (3, 2014);
INSERT INTO Item VALUES (30, 3, 2.0);
SELECT FiscalYear, SUM(Amount) AS revenue FROM Header, Item
WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear;
)";
  auto report = replayer_->ReplayString(trace);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->ddl, 2u);
  EXPECT_EQ(report->inserts, 7u);
  EXPECT_EQ(report->queries, 2u);
  EXPECT_EQ(report->merges, 1u);
  EXPECT_EQ(report->statements, 11u);
  EXPECT_EQ(report->last_query_groups, 2u);
  EXPECT_GT(report->total_ms, 0.0);

  // The replay left consistent data behind.
  auto header = db_.GetTable("Header");
  ASSERT_TRUE(header.ok());
  EXPECT_EQ((*header)->VisibleRows(db_.txn_manager().GlobalSnapshot()), 3u);
  // The query went through the cache: one entry exists.
  EXPECT_EQ(cache_->num_entries(), 1u);
}

TEST_F(TraceTest, MergeSpecificTables) {
  std::string trace = std::string(kSetupTrace) + "!merge Header Item\n";
  auto report = replayer_->ReplayString(trace);
  ASSERT_TRUE(report.ok()) << report.status();
  auto header = db_.GetTable("Header");
  ASSERT_TRUE(header.ok());
  EXPECT_EQ((*header)->group(0).main.num_rows(), 2u);
  EXPECT_TRUE((*header)->group(0).delta.empty());
}

TEST_F(TraceTest, ErrorsCarryLineNumbers) {
  auto report = replayer_->ReplayString("SELECT nothing;\n");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("trace line 1"),
            std::string::npos);

  auto bad_merge = replayer_->ReplayString("!merge NoSuchTable\n");
  ASSERT_FALSE(bad_merge.ok());
  EXPECT_NE(bad_merge.status().message().find("trace line 1"),
            std::string::npos);
}

TEST_F(TraceTest, UnknownMetaOperationRejected) {
  auto report = replayer_->ReplayString("!vacuum\n");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("unknown meta operation"),
            std::string::npos);
}

TEST_F(TraceTest, FlightDumpMetaOpValidatesItsCount) {
  // The dump itself goes to stderr; here we only pin the argument contract.
  auto ok = replayer_->ReplayString("!flightdump 4\n");
  EXPECT_TRUE(ok.ok()) << ok.status();
  auto bare = replayer_->ReplayString("!flightdump\n");
  EXPECT_TRUE(bare.ok()) << bare.status();
  auto negative = replayer_->ReplayString("!flightdump -1\n");
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.status().message().find("positive count"),
            std::string::npos);
  auto extra = replayer_->ReplayString("!flightdump 1 2\n");
  ASSERT_FALSE(extra.ok());
}

TEST_F(TraceTest, DanglingStatementRejected) {
  auto report = replayer_->ReplayString("INSERT INTO Header VALUES (1, 2)");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("missing ';'"),
            std::string::npos);
}

TEST_F(TraceTest, FailedStatementStopsReplay) {
  std::string trace = std::string(kSetupTrace) +
                      "INSERT INTO Item VALUES (99, 999, 1.0);\n"  // Bad FK.
                      "INSERT INTO Header VALUES (50, 2020);\n";
  auto report = replayer_->ReplayString(trace);
  ASSERT_FALSE(report.ok());
  // The statement after the failure never ran.
  auto header = db_.GetTable("Header");
  ASSERT_TRUE(header.ok());
  EXPECT_FALSE((*header)->FindByPk(Value(int64_t{50})).has_value());
}

TEST_F(TraceTest, ReplayMatchesDirectExecution) {
  ASSERT_TRUE(replayer_->ReplayString(kSetupTrace).ok());
  // Trace-driven state equals what direct API calls produce.
  Database direct;
  Table* header = nullptr;
  Table* item = nullptr;
  testing_util::CreateHeaderItemTables(&direct, &header, &item);
  {
    Transaction txn = direct.Begin();
    ASSERT_OK(header->Insert(txn, {Value(int64_t{1}), Value(int64_t{2013})}));
  }
  {
    Transaction txn = direct.Begin();
    ASSERT_OK(item->Insert(
        txn, {Value(int64_t{10}), Value(int64_t{1}), Value(12.5)}));
  }
  {
    Transaction txn = direct.Begin();
    ASSERT_OK(item->Insert(
        txn, {Value(int64_t{11}), Value(int64_t{1}), Value(7.5)}));
  }
  {
    Transaction txn = direct.Begin();
    ASSERT_OK(header->Insert(txn, {Value(int64_t{2}), Value(int64_t{2014})}));
  }
  {
    Transaction txn = direct.Begin();
    ASSERT_OK(item->Insert(
        txn, {Value(int64_t{20}), Value(int64_t{2}), Value(30.0)}));
  }
  Executor traced_exec(&db_);
  Executor direct_exec(&direct);
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto traced = traced_exec.ExecuteUncached(
      query, db_.txn_manager().GlobalSnapshot());
  auto expected = direct_exec.ExecuteUncached(
      query, direct.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(traced.ok() && expected.ok());
  std::string diff;
  EXPECT_TRUE(traced->ApproxEquals(*expected, 1e-9, &diff)) << diff;
}

}  // namespace
}  // namespace aggcache
