#ifndef AGGCACHE_TESTS_TEST_UTIL_H_
#define AGGCACHE_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "aggcache/aggcache.h"
#include "gtest/gtest.h"

namespace aggcache {
namespace testing_util {

/// gtest helper: fails the current test when `status` is not OK.
#define ASSERT_OK(expr)                                      \
  do {                                                       \
    ::aggcache::Status status_ = (expr);                     \
    ASSERT_TRUE(status_.ok()) << status_.ToString();         \
  } while (false)

#define EXPECT_OK(expr)                                      \
  do {                                                       \
    ::aggcache::Status status_ = (expr);                     \
    EXPECT_TRUE(status_.ok()) << status_.ToString();         \
  } while (false)

/// Unwraps a StatusOr or fails the test.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                     \
  auto AGGCACHE_CONCAT_(assign_or_, __LINE__) = (rexpr);     \
  ASSERT_TRUE(AGGCACHE_CONCAT_(assign_or_, __LINE__).ok())   \
      << AGGCACHE_CONCAT_(assign_or_, __LINE__).status();    \
  lhs = std::move(AGGCACHE_CONCAT_(assign_or_, __LINE__)).value()

/// Creates the canonical two-table header/item schema used across tests:
/// Header(HeaderID pk, FiscalYear, tid_Header) and Item(ItemID pk,
/// HeaderID fk->Header with MD tid, Amount double, tid_Item). Returns the
/// two tables through out-params.
inline void CreateHeaderItemTables(Database* db, Table** header,
                                   Table** item) {
  auto header_or = db->CreateTable(SchemaBuilder("Header")
                                       .AddColumn("HeaderID",
                                                  ColumnType::kInt64)
                                       .PrimaryKey()
                                       .AddColumn("FiscalYear",
                                                  ColumnType::kInt64)
                                       .OwnTid("tid_Header")
                                       .Build());
  ASSERT_TRUE(header_or.ok()) << header_or.status();
  *header = header_or.value();
  auto item_or = db->CreateTable(SchemaBuilder("Item")
                                     .AddColumn("ItemID", ColumnType::kInt64)
                                     .PrimaryKey()
                                     .AddColumn("HeaderID",
                                                ColumnType::kInt64)
                                     .References("Header", "tid_Header")
                                     .AddColumn("Amount",
                                                ColumnType::kDouble)
                                     .OwnTid("tid_Item")
                                     .Build());
  ASSERT_TRUE(item_or.ok()) << item_or.status();
  *item = item_or.value();
}

/// Inserts one business object: a header and `num_items` items, all in one
/// transaction — an atomic write scope, so tests with concurrent readers
/// never observe a half-inserted object.
inline Status InsertBusinessObject(Database* db, Table* header, Table* item,
                                   int64_t header_id, int64_t fiscal_year,
                                   int num_items, double amount,
                                   int64_t* next_item_id) {
  ScopedTransaction txn = db->BeginAtomic();
  RETURN_IF_ERROR(
      header->Insert(txn, {Value(header_id), Value(fiscal_year)}));
  for (int i = 0; i < num_items; ++i) {
    RETURN_IF_ERROR(item->Insert(
        txn, {Value((*next_item_id)++), Value(header_id), Value(amount)}));
  }
  return Status::Ok();
}

/// The standard header/item revenue query: SUM(Amount), COUNT(*) grouped by
/// FiscalYear over Header ⋈ Item.
inline AggregateQuery HeaderItemQuery() {
  return QueryBuilder()
      .From("Header")
      .Join("Item", "HeaderID", "HeaderID")
      .GroupBy("Header", "FiscalYear")
      .Sum("Item", "Amount", "Revenue")
      .CountStar("NumItems")
      .Build();
}

/// Asserts that cached execution (any strategy/pushdown combination) agrees
/// with uncached execution for `query` right now.
inline void ExpectAllStrategiesAgree(Database* db,
                                     AggregateCacheManager* cache,
                                     const AggregateQuery& query) {
  Transaction txn = db->Begin();
  ExecutionOptions uncached;
  uncached.strategy = ExecutionStrategy::kUncached;
  auto baseline = cache->Execute(query, txn, uncached);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kCachedNoPruning,
        ExecutionStrategy::kCachedEmptyDeltaPruning,
        ExecutionStrategy::kCachedFullPruning}) {
    for (bool pushdown : {false, true}) {
      ExecutionOptions options;
      options.strategy = strategy;
      options.use_predicate_pushdown = pushdown;
      auto result = cache->Execute(query, txn, options);
      ASSERT_TRUE(result.ok()) << result.status();
      std::string diff;
      EXPECT_TRUE(result->ApproxEquals(*baseline, 1e-9, &diff))
          << ExecutionStrategyToString(strategy)
          << " pushdown=" << pushdown << ": " << diff;
    }
  }
}

}  // namespace testing_util
}  // namespace aggcache

#endif  // AGGCACHE_TESTS_TEST_UTIL_H_
