// Tests for the slow-query log (src/obs/slow_log.h): threshold gating from
// the environment spec, the bounded in-memory ring behind GET /slowlog, and
// the rotating on-disk file ring for post-mortems.

#include "obs/slow_log.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "obs/engine_metrics.h"

namespace aggcache {
namespace {

class SlowLogTest : public ::testing::Test {
 protected:
  void SetUp() override { SlowQueryLog::Global().ResetForTest(); }
  void TearDown() override {
    SlowQueryLog::Global().ResetForTest();
    ::unsetenv("AGGCACHE_SLOW_QUERY_MS");
  }

  std::string TempDir() {
    std::string dir = ::testing::TempDir() + "/slowlog_test_" +
                      std::to_string(::getpid()) + "_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    std::string cmd = "mkdir -p " + dir;
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
  }
};

TEST_F(SlowLogTest, DisabledByDefaultAndRecordIsANoOp) {
  SlowQueryLog& log = SlowQueryLog::Global();
  EXPECT_FALSE(log.enabled());
  log.Record("{\"x\":1}");
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total(), 0u);
}

TEST_F(SlowLogTest, ConfigureFromEnvParsesFullSpec) {
  ::setenv("AGGCACHE_SLOW_QUERY_MS", "250.5,files=4,keep=16", 1);
  SlowQueryLog& log = SlowQueryLog::Global();
  log.ConfigureFromEnv();
  EXPECT_TRUE(log.enabled());
  EXPECT_DOUBLE_EQ(log.threshold_ms(), 250.5);
}

TEST_F(SlowLogTest, MalformedEnvLeavesTheLogDisabled) {
  SlowQueryLog& log = SlowQueryLog::Global();
  for (const char* bad : {"", "notanumber", "-5", "0"}) {
    ::setenv("AGGCACHE_SLOW_QUERY_MS", bad, 1);
    log.ConfigureFromEnv();
    EXPECT_FALSE(log.enabled()) << "spec: '" << bad << "'";
  }
}

TEST_F(SlowLogTest, InMemoryRingKeepsTheNewestRecords) {
  SlowQueryLog& log = SlowQueryLog::Global();
  SlowQueryLog::Options options;
  options.threshold_ms = 1;
  options.keep = 3;
  log.Configure(options);
  for (int i = 0; i < 5; ++i) {
    log.Record("{\"n\":" + std::to_string(i) + "}");
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total(), 5u);
  std::string dump = log.DumpJson();
  EXPECT_NE(dump.find("\"schema\":\"aggcache-slowlog-v1\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"total\":5"), std::string::npos);
  // Oldest two fell off the ring; newest three remain in order.
  EXPECT_EQ(dump.find("{\"n\":0}"), std::string::npos);
  EXPECT_EQ(dump.find("{\"n\":1}"), std::string::npos);
  EXPECT_NE(dump.find("{\"n\":2},{\"n\":3},{\"n\":4}"), std::string::npos)
      << dump;
}

TEST_F(SlowLogTest, RecordBumpsTheSlowQueriesMetric) {
  uint64_t before = EngineMetrics::Get().slow_queries->Value();
  SlowQueryLog& log = SlowQueryLog::Global();
  SlowQueryLog::Options options;
  options.threshold_ms = 1;
  log.Configure(options);
  log.Record("{}");
  EXPECT_EQ(EngineMetrics::Get().slow_queries->Value(), before + 1);
}

TEST_F(SlowLogTest, DiskRingRotatesAcrossMaxFiles) {
  SlowQueryLog& log = SlowQueryLog::Global();
  SlowQueryLog::Options options;
  options.threshold_ms = 1;
  options.dir = TempDir();
  options.max_files = 2;
  log.Configure(options);
  log.Record("{\"n\":0}");  // -> slowlog-0.json
  log.Record("{\"n\":1}");  // -> slowlog-1.json
  log.Record("{\"n\":2}");  // wraps -> slowlog-0.json
  auto read_file = [&](int n) {
    std::ifstream in(options.dir + "/slowlog-" + std::to_string(n) +
                     ".json");
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
  };
  EXPECT_EQ(read_file(0), "{\"n\":2}\n");
  EXPECT_EQ(read_file(1), "{\"n\":1}\n");
}

TEST_F(SlowLogTest, UnwritableDirIsSwallowed) {
  // Disk failures degrade to in-memory only; Record must not throw or
  // lose the in-memory copy.
  SlowQueryLog& log = SlowQueryLog::Global();
  SlowQueryLog::Options options;
  options.threshold_ms = 1;
  options.dir = "/nonexistent_dir_for_slowlog_test";
  log.Configure(options);
  log.Record("{\"n\":0}");
  EXPECT_EQ(log.size(), 1u);
}

}  // namespace
}  // namespace aggcache
