// Tests for per-thread hardware perf counters (src/obs/perf_counters.h).
// The interesting contract is graceful degradation: most CI containers run
// with kernel.perf_event_paranoid high enough that perf_event_open fails
// with EACCES, and the engine must latch one process-wide "unavailable"
// state, set the aggcache_perf_counters_unavailable gauge, and OMIT perf
// fields from every downstream surface — never report zeros as
// measurements. The failure is injected via the test hook, so these tests
// pass identically on perf-capable and perf-denied hosts and never touch
// kernel settings.

#include "obs/perf_counters.h"

#include <cerrno>

#include "gtest/gtest.h"
#include "obs/engine_metrics.h"
#include "obs/query_trace.h"

namespace aggcache {
namespace {

class PerfCountersTest : public ::testing::Test {
 protected:
  // Each test chooses its own simulated state; always leave the process
  // back at "unknown" so test order cannot matter.
  void TearDown() override { PerfCounters::ResetForTest(); }
};

TEST_F(PerfCountersTest, SimulatedEaccesLatchesUnavailable) {
  PerfCounters::SimulateOpenFailureForTest(EACCES);
  EXPECT_FALSE(PerfCounters::Available());
  EXPECT_TRUE(PerfCounters::unavailable());
  PerfDelta reading = PerfCounters::Read();
  EXPECT_FALSE(reading.valid);
  EXPECT_EQ(reading.cycles, 0u);
  // The degraded state is surfaced as a metric, not only a stderr line.
  EXPECT_EQ(EngineMetrics::Get().perf_counters_unavailable->Value(), 1);
}

TEST_F(PerfCountersTest, SimulatedEnosysDegradesTheSameWay) {
  PerfCounters::SimulateOpenFailureForTest(ENOSYS);
  EXPECT_FALSE(PerfCounters::Available());
  EXPECT_FALSE(PerfCounters::Read().valid);
}

TEST_F(PerfCountersTest, ResetClearsTheLatch) {
  PerfCounters::SimulateOpenFailureForTest(EACCES);
  ASSERT_FALSE(PerfCounters::Available());
  PerfCounters::ResetForTest();
  EXPECT_FALSE(PerfCounters::unavailable());
  EXPECT_EQ(EngineMetrics::Get().perf_counters_unavailable->Value(), 0);
  // Whether the retry succeeds depends on the host; either way the state
  // must be coherent: Available() and Read().valid agree.
  EXPECT_EQ(PerfCounters::Available(), PerfCounters::Read().valid);
}

TEST_F(PerfCountersTest, DeltaRequiresTwoValidSamples) {
  PerfDelta invalid;
  PerfDelta valid;
  valid.valid = true;
  valid.cycles = 100;
  EXPECT_FALSE(PerfCounters::Delta(invalid, valid).valid);
  EXPECT_FALSE(PerfCounters::Delta(valid, invalid).valid);

  PerfDelta begin;
  begin.valid = true;
  begin.cycles = 40;
  begin.instructions = 80;
  PerfDelta end;
  end.valid = true;
  end.cycles = 100;
  end.instructions = 260;
  PerfDelta delta = PerfCounters::Delta(begin, end);
  EXPECT_TRUE(delta.valid);
  EXPECT_EQ(delta.cycles, 60u);
  EXPECT_EQ(delta.instructions, 180u);
  EXPECT_DOUBLE_EQ(delta.Ipc(), 3.0);
  // A counter that went backwards (reset, migration artifact) clamps to 0
  // instead of wrapping to 2^64-ish garbage.
  EXPECT_EQ(PerfCounters::Delta(end, begin).cycles, 0u);
}

TEST_F(PerfCountersTest, ReadsAreMonotonicWhenAvailable) {
  if (!PerfCounters::Available()) {
    GTEST_SKIP() << "host denies perf_event_open; degraded path covered "
                    "by the simulated-failure tests";
  }
  PerfDelta first = PerfCounters::Read();
  ASSERT_TRUE(first.valid);
  // Burn some cycles so the second reading must be strictly ahead.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i);
  PerfDelta second = PerfCounters::Read();
  ASSERT_TRUE(second.valid);
  EXPECT_GT(second.cycles, first.cycles);
  EXPECT_GT(second.instructions, first.instructions);
  PerfDelta delta = PerfCounters::Delta(first, second);
  EXPECT_TRUE(delta.valid);
  EXPECT_GT(delta.cycles, 0u);
}

TEST_F(PerfCountersTest, TraceOmitsPerfFieldsWhenUnavailable) {
  // The "omitted, not zeroed" contract at the EXPLAIN surface: a trace
  // whose query ran without counters carries no perf object at all.
  QueryTrace trace;
  trace.statement = "SELECT 1";
  EXPECT_EQ(trace.ToJson().find("\"perf\""), std::string::npos);
  EXPECT_EQ(trace.ToText().find("perf:"), std::string::npos);

  trace.perf_available = true;
  trace.perf_total.valid = true;
  trace.perf_total.cycles = 1000;
  trace.perf_total.instructions = 2000;
  EXPECT_NE(trace.ToJson().find("\"perf\""), std::string::npos);
  EXPECT_NE(trace.ToText().find("perf:"), std::string::npos);
}

TEST_F(PerfCountersTest, PhaseRegionIsInertWithoutConsumers) {
  // No trace installed, no span: the region must not arm (and thus must
  // not read counters), keeping the span-overhead budget intact.
  PerfCounters::SimulateOpenFailureForTest(EACCES);
  {
    PerfPhaseRegion region("test_phase");
  }  // Destructor must be a no-op; nothing to assert beyond not crashing.
  PerfCounters::ResetForTest();

  // With a trace installed the region feeds trace.perf_phases — but only
  // when the counters are readable.
  QueryTrace trace;
  {
    TraceContext scope(&trace);
    PerfPhaseRegion region("test_phase");
  }
  if (PerfCounters::Available()) {
    ASSERT_EQ(trace.perf_phases.size(), 1u);
    EXPECT_STREQ(trace.perf_phases[0].phase, "test_phase");
    EXPECT_TRUE(trace.perf_phases[0].delta.valid);
  } else {
    EXPECT_TRUE(trace.perf_phases.empty());
  }
}

}  // namespace
}  // namespace aggcache
