#include "common/string_util.h"

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 5, "abc"), "x=5 y=abc");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(5000, 'z');
  std::string result = StrFormat("<%s>", long_arg.c_str());
  EXPECT_EQ(result.size(), 5002u);
  EXPECT_EQ(result.front(), '<');
  EXPECT_EQ(result.back(), '>');
}

TEST(StrJoinTest, JoinsParts) {
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"a"}, ", "), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "|"), "a|b|c");
}

TEST(HumanBytesTest, PicksUnits) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3 << 20), "3.0 MiB");
  EXPECT_EQ(HumanBytes(size_t{5} << 30), "5.0 GiB");
}

}  // namespace
}  // namespace aggcache
