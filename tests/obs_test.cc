// Tests for the metrics registry (src/obs/metrics_registry.h): histogram
// bucket arithmetic at the power-of-two boundaries, counter/gauge basics,
// the Prometheus and JSON expositions (golden), and the schema of the
// engine-wide metric handles (golden — CI renders these and diffs).

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/engine_metrics.h"
#include "obs/metrics_registry.h"

namespace aggcache {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i holds value <= 2^i: 0 and 1 land in bucket 0 (le="1"), each
  // exact power lands in its own bucket, each power + 1 in the next.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 3u);
  EXPECT_EQ(Histogram::BucketIndex(9), 4u);
  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    uint64_t bound = Histogram::BucketUpperBound(i);
    EXPECT_EQ(bound, uint64_t{1} << i);
    EXPECT_EQ(Histogram::BucketIndex(bound), i) << "bound " << bound;
    if (i + 2 < Histogram::kNumBuckets) {
      EXPECT_EQ(Histogram::BucketIndex(bound + 1), i + 1)
          << "bound+1 " << bound + 1;
    }
  }
  // The last finite bucket is le="2^30"; anything above overflows to +Inf.
  uint64_t last_finite =
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 2);
  EXPECT_EQ(last_finite, uint64_t{1} << 30);
  EXPECT_EQ(Histogram::BucketIndex(last_finite), Histogram::kNumBuckets - 2);
  EXPECT_EQ(Histogram::BucketIndex(last_finite + 1),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, ObserveSumCountReset) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(1000);
  h.Observe((uint64_t{1} << 30) + 1);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.Sum(), 0u + 1 + 2 + 1000 + (uint64_t{1} << 30) + 1);
  EXPECT_EQ(h.BucketCount(0), 2u);    // 0 and 1
  EXPECT_EQ(h.BucketCount(1), 1u);    // 2
  EXPECT_EQ(h.BucketCount(10), 1u);   // 1000 <= 1024
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets - 1), 1u);  // overflow
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.BucketCount(0), 0u);
}

TEST(HistogramTest, ValueAtQuantileEmptyAndClamping) {
  Histogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0.0);

  h.Observe(1);
  // Out-of-range quantiles clamp rather than extrapolate.
  EXPECT_EQ(h.ValueAtQuantile(-1.0), h.ValueAtQuantile(0.0));
  EXPECT_EQ(h.ValueAtQuantile(2.0), h.ValueAtQuantile(1.0));
}

TEST(HistogramTest, ValueAtQuantileInterpolatesWithinBucket) {
  // Five observations of 2 all land in bucket 1, which spans (1, 2]:
  // quantiles interpolate linearly across the bucket's width.
  Histogram h;
  for (int i = 0; i < 5; ++i) h.Observe(2);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.1), 1.1);
}

TEST(HistogramTest, ValueAtQuantileCrossesBucketBoundaries) {
  // 10 values in bucket 0 ([0,1]) and 10 in bucket 2 ((2,4]): the median
  // sits exactly at bucket 0's upper edge, the p75 halfway into bucket 2.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Observe(1);
  for (int i = 0; i < 10; ++i) h.Observe(4);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.25), 0.5);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.75), 3.0);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(1.0), 4.0);
}

TEST(HistogramTest, ValueAtQuantileOverflowBucketReportsLastFiniteBound) {
  // The +Inf bucket has no upper edge to interpolate toward; quantiles that
  // land there report the last finite bound (2^30) as a lower-bound
  // estimate instead of inventing a number.
  Histogram h;
  h.Observe(UINT64_MAX);
  const double last_finite = static_cast<double>(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 2));
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), last_finite);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(1.0), last_finite);
}

TEST(MetricsRegistryTest, SnapshotValuesCoversAllKinds) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reqs_total", "Requests");
  Gauge* g = registry.GetGauge("depth", "Depth");
  Histogram* h = registry.GetHistogram("lat_us", "Latency");
  c->Increment(7);
  g->Set(-3);
  h->Observe(10);
  h->Observe(20);

  auto snapshot = registry.SnapshotValues();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot.at("reqs_total").kind, MetricsRegistry::Kind::kCounter);
  EXPECT_EQ(snapshot.at("reqs_total").value, 7);
  EXPECT_EQ(snapshot.at("depth").kind, MetricsRegistry::Kind::kGauge);
  EXPECT_EQ(snapshot.at("depth").value, -3);
  EXPECT_EQ(snapshot.at("lat_us").kind, MetricsRegistry::Kind::kHistogram);
  EXPECT_EQ(snapshot.at("lat_us").count, 2u);
  EXPECT_EQ(snapshot.at("lat_us").sum, 30u);
}

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c_total", "a counter");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  // Same name returns the same object; help is first-registration-wins.
  EXPECT_EQ(registry.GetCounter("c_total", "ignored"), c);

  Gauge* g = registry.GetGauge("g", "a gauge");
  g->Set(7);
  g->Add(-10);
  EXPECT_EQ(g->Value(), -3);
  EXPECT_EQ(registry.num_metrics(), 2u);

  registry.ResetAllForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
}

TEST(MetricsRegistryTest, KindMismatchAborts) {
  MetricsRegistry registry;
  registry.GetCounter("dual", "first as counter");
  EXPECT_DEATH(registry.GetGauge("dual", "now as gauge"),
               "re-registered as a different kind");
}

TEST(MetricsRegistryTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetCounter("zz_requests_total", "Requests served")->Increment(3);
  registry.GetGauge("aa_depth", "Queue depth")->Set(-2);
  Histogram* h = registry.GetHistogram("mm_latency_us", "Latency");
  h->Observe(1);
  h->Observe(3);
  h->Observe(3);

  std::string rendered = registry.RenderPrometheus();
  // Map order: aa_depth, mm_latency_us, zz_requests_total. Histogram
  // buckets are cumulative; value 1 -> le="1", the two 3s -> le="4".
  std::istringstream lines(rendered);
  std::string line;
  std::vector<std::string> got;
  while (std::getline(lines, line)) got.push_back(line);
  ASSERT_GE(got.size(), 6u);
  EXPECT_EQ(got[0], "# HELP aa_depth Queue depth");
  EXPECT_EQ(got[1], "# TYPE aa_depth gauge");
  EXPECT_EQ(got[2], "aa_depth -2");
  EXPECT_EQ(got[3], "# HELP mm_latency_us Latency");
  EXPECT_EQ(got[4], "# TYPE mm_latency_us histogram");
  EXPECT_EQ(got[5], "mm_latency_us_bucket{le=\"1\"} 1");
  EXPECT_EQ(got[6], "mm_latency_us_bucket{le=\"2\"} 1");
  EXPECT_EQ(got[7], "mm_latency_us_bucket{le=\"4\"} 3");
  // Every later bucket is cumulative at 3, through +Inf.
  size_t inf_index = 5 + Histogram::kNumBuckets - 1;
  EXPECT_EQ(got[inf_index], "mm_latency_us_bucket{le=\"+Inf\"} 3");
  EXPECT_EQ(got[inf_index + 1], "mm_latency_us_sum 7");
  EXPECT_EQ(got[inf_index + 2], "mm_latency_us_count 3");
  EXPECT_EQ(got[inf_index + 3], "# HELP zz_requests_total Requests served");
  EXPECT_EQ(got[inf_index + 4], "# TYPE zz_requests_total counter");
  EXPECT_EQ(got[inf_index + 5], "zz_requests_total 3");
  EXPECT_EQ(got.size(), inf_index + 6);
}

TEST(MetricsRegistryTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "Requests \"served\"")->Increment(2);
  registry.GetGauge("depth", "Depth")->Set(5);
  std::string rendered = registry.RenderJson();
  EXPECT_EQ(rendered,
            "{\"depth\":{\"type\":\"gauge\",\"value\":5},"
            "\"requests_total\":{\"type\":\"counter\",\"value\":2}}");
}

TEST(MetricsRegistryTest, JsonHistogramShape) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", "Latency");
  h->Observe(4);
  std::string rendered = registry.RenderJson();
  EXPECT_NE(rendered.find("\"lat\":{\"type\":\"histogram\",\"count\":1,"
                          "\"sum\":4,\"buckets\":[{\"le\":\"1\",\"count\":0},"
                          "{\"le\":\"2\",\"count\":0},"
                          "{\"le\":\"4\",\"count\":1}"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("{\"le\":\"+Inf\",\"count\":1}]}"),
            std::string::npos)
      << rendered;
}

// The engine's metric inventory: names and kinds are part of the
// observability contract (dashboards and the CI golden check key on them).
TEST(EngineMetricsTest, SchemaGolden) {
  EngineMetrics::Get();  // Ensure every engine metric is registered.
  std::string rendered = MetricsRegistry::Global().RenderPrometheus();
  std::vector<std::string> type_lines;
  std::istringstream lines(rendered);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) == 0) type_lines.push_back(line);
  }
  const std::vector<std::string> expected = {
      "# TYPE aggcache_active_queries gauge",
      "# TYPE aggcache_admission_admitted_total counter",
      "# TYPE aggcache_admission_queue_waits_total counter",
      "# TYPE aggcache_admission_rejects_capacity_total counter",
      "# TYPE aggcache_admission_rejects_timeout_total counter",
      "# TYPE aggcache_admission_running gauge",
      "# TYPE aggcache_admission_wait_us histogram",
      "# TYPE aggcache_build_info gauge",
      "# TYPE aggcache_cache_admission_rejects_total counter",
      "# TYPE aggcache_cache_build_us histogram",
      "# TYPE aggcache_cache_delta_comp_us histogram",
      "# TYPE aggcache_cache_evictions_total counter",
      "# TYPE aggcache_cache_hits_total counter",
      "# TYPE aggcache_cache_lookups_total counter",
      "# TYPE aggcache_cache_main_comp_us histogram",
      "# TYPE aggcache_cache_misses_total counter",
      "# TYPE aggcache_cache_rebuilds_total counter",
      "# TYPE aggcache_cache_singleflight_waits_total counter",
      "# TYPE aggcache_cache_uncached_fallbacks_total counter",
      "# TYPE aggcache_checkpoint_us histogram",
      "# TYPE aggcache_checkpoints_skipped_total counter",
      "# TYPE aggcache_checkpoints_total counter",
      "# TYPE aggcache_degraded_flips_total counter",
      "# TYPE aggcache_degraded_mode gauge",
      "# TYPE aggcache_entry_comp_overrun_us_total counter",
      "# TYPE aggcache_entry_delta_rows_total counter",
      "# TYPE aggcache_entry_hit_us histogram",
      "# TYPE aggcache_entry_saved_us_total counter",
      "# TYPE aggcache_executor_code_joins_total counter",
      "# TYPE aggcache_executor_fallback_groupings_total counter",
      "# TYPE aggcache_executor_packed_groupings_total counter",
      "# TYPE aggcache_executor_rows_scanned_total counter",
      "# TYPE aggcache_executor_rows_selected_total counter",
      "# TYPE aggcache_executor_selection_batches_total counter",
      "# TYPE aggcache_executor_subjoins_executed_total counter",
      "# TYPE aggcache_executor_tuples_joined_total counter",
      "# TYPE aggcache_mem_pressure_rejects_total counter",
      "# TYPE aggcache_mem_reserved_bytes gauge",
      "# TYPE aggcache_mem_reserved_hwm_bytes gauge",
      "# TYPE aggcache_merge_daemon_aborts_total counter",
      "# TYPE aggcache_merge_daemon_attempts_total counter",
      "# TYPE aggcache_merge_daemon_backoff_ms_total counter",
      "# TYPE aggcache_merge_daemon_commits_total counter",
      "# TYPE aggcache_merge_daemon_pressure_yields_total counter",
      "# TYPE aggcache_merge_daemon_ticks_total counter",
      "# TYPE aggcache_perf_counters_unavailable gauge",
      "# TYPE aggcache_pool_queue_depth gauge",
      "# TYPE aggcache_pool_task_us histogram",
      "# TYPE aggcache_pool_tasks_total counter",
      "# TYPE aggcache_pruner_considered_total counter",
      "# TYPE aggcache_pruner_pruned_aging_total counter",
      "# TYPE aggcache_pruner_pruned_empty_total counter",
      "# TYPE aggcache_pruner_pruned_tid_range_total counter",
      "# TYPE aggcache_pushdown_predicates_total counter",
      "# TYPE aggcache_query_cancellations_total counter",
      "# TYPE aggcache_query_deadline_aborts_total counter",
      "# TYPE aggcache_query_mem_aborts_total counter",
      "# TYPE aggcache_query_registrations_total counter",
      "# TYPE aggcache_recovery_discarded_scopes_total counter",
      "# TYPE aggcache_recovery_replay_us histogram",
      "# TYPE aggcache_recovery_replayed_records_total counter",
      "# TYPE aggcache_recovery_warm_admissions_total counter",
      "# TYPE aggcache_remote_cancellations_total counter",
      "# TYPE aggcache_sharedscan_attaches_total counter",
      "# TYPE aggcache_sharedscan_leads_total counter",
      "# TYPE aggcache_slow_queries_total counter",
      "# TYPE aggcache_wal_appends_total counter",
      "# TYPE aggcache_wal_bytes_total counter",
      "# TYPE aggcache_wal_sync_us histogram",
      "# TYPE aggcache_wal_syncs_total counter",
  };
  EXPECT_EQ(type_lines, expected);
}

// The EngineMetrics handle must hand out registry-owned pointers — the
// lock-free update contract depends on their stability.
TEST(EngineMetricsTest, HandlesAreStableRegistryPointers) {
  const EngineMetrics& a = EngineMetrics::Get();
  const EngineMetrics& b = EngineMetrics::Get();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.cache_lookups,
            MetricsRegistry::Global().GetCounter(
                "aggcache_cache_lookups_total", ""));
  uint64_t before = a.cache_lookups->Value();
  a.cache_lookups->Increment();
  EXPECT_EQ(b.cache_lookups->Value(), before + 1);
}

}  // namespace
}  // namespace aggcache
