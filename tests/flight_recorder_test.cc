// Tests for the engine flight recorder (src/obs/flight_recorder.h): ring
// wraparound keeps the most recent events in order, the loss counter only
// counts segment-pool exhaustion, concurrent writers publish torn-free
// events, and the JSON dump matches its documented schema (golden —
// tooling parses these dumps).

#include <algorithm>
#include <latch>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"

namespace aggcache {
namespace {

FlightRecorder::Options SmallOptions(size_t events_per_segment,
                                     size_t max_segments) {
  FlightRecorder::Options options;
  options.events_per_segment = events_per_segment;
  options.max_segments = max_segments;
  return options;
}

TEST(FlightRecorderTest, EventTypeNamesAreStable) {
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kMergeStart),
               "merge_start");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kMergeCommit),
               "merge_commit");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kMergeAbort),
               "merge_abort");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kMergeBackoff),
               "merge_backoff");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kEntryState),
               "entry_state");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kAdmissionReject),
               "admission_reject");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kSingleFlightWait),
               "singleflight_wait");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kPruneVerdict),
               "prune_verdict");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kPushdownVerdict),
               "pushdown_verdict");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kFaultInjected),
               "fault_injected");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kSnapshotIssued),
               "snapshot_issued");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kCheckFailure),
               "check_failure");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kPoolResize),
               "pool_resize");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kMaintenanceFailure),
               "maintenance_failure");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kWalAppend),
               "wal_append");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kWalSync), "wal_sync");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kCheckpointPublish),
               "checkpoint_publish");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kRecoveryReplay),
               "recovery_replay");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kQueryAbort),
               "query_abort");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kAdmissionShed),
               "admission_shed");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kDegradedFlip),
               "degraded_flip");
  EXPECT_STREQ(FlightEventTypeToString(FlightEventType::kPressureYield),
               "pressure_yield");
}

TEST(FlightRecorderTest, RecordsAndCollectsInOrder) {
  FlightRecorder recorder(SmallOptions(64, 4));
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Record(FlightEventType::kMergeStart, i, i * 2, "Header");
  }
  EXPECT_EQ(recorder.recorded_events(), 10u);
  EXPECT_EQ(recorder.lost_events(), 0u);

  std::vector<FlightRecorder::Event> events = recorder.Collect();
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1) << "1-based, gap-free, oldest first";
    EXPECT_EQ(events[i].type, FlightEventType::kMergeStart);
    EXPECT_EQ(events[i].a, i);
    EXPECT_EQ(events[i].b, i * 2);
    EXPECT_STREQ(events[i].detail, "Header");
  }
}

TEST(FlightRecorderTest, WraparoundKeepsMostRecentEventsInOrder) {
  // 8-slot segment, 30 events from one thread: the ring has been lapped
  // several times and must retain exactly the newest 8, still ordered.
  FlightRecorder recorder(SmallOptions(8, 2));
  for (uint64_t i = 1; i <= 30; ++i) {
    recorder.Record(FlightEventType::kEntryState, i);
  }
  EXPECT_EQ(recorder.recorded_events(), 30u);
  EXPECT_EQ(recorder.lost_events(), 0u) << "overwrite is not loss";

  std::vector<FlightRecorder::Event> events = recorder.Collect();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 23 + i);  // seqs 23..30 survive
    EXPECT_EQ(events[i].a, 23 + i);    // payload moved with its seq
  }
}

TEST(FlightRecorderTest, CollectHonorsMaxEvents) {
  FlightRecorder recorder(SmallOptions(64, 2));
  for (uint64_t i = 1; i <= 20; ++i) {
    recorder.Record(FlightEventType::kPruneVerdict, i);
  }
  std::vector<FlightRecorder::Event> events = recorder.Collect(5);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front().seq, 16u) << "keeps the newest, drops the oldest";
  EXPECT_EQ(events.back().seq, 20u);
}

TEST(FlightRecorderTest, LossCounterCountsSegmentExhaustionExactly) {
  // One segment total, and the main thread takes it with its first record.
  // Every event from any other thread must then be counted lost — no more,
  // no less.
  FlightRecorder recorder(SmallOptions(8, 1));
  recorder.Record(FlightEventType::kMergeStart, 1);
  std::thread starved([&recorder] {
    for (uint64_t i = 0; i < 10; ++i) {
      recorder.Record(FlightEventType::kMergeCommit, i);
    }
  });
  starved.join();
  EXPECT_EQ(recorder.lost_events(), 10u);
  EXPECT_EQ(recorder.recorded_events(), 1u);
  std::vector<FlightRecorder::Event> events = recorder.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, FlightEventType::kMergeStart);
}

TEST(FlightRecorderTest, SegmentIsReleasedAtThreadExitAndReused) {
  FlightRecorder recorder(SmallOptions(8, 1));
  std::thread first([&recorder] {
    recorder.Record(FlightEventType::kMergeStart, 7);
  });
  first.join();
  EXPECT_EQ(recorder.active_segments(), 0u);
  // A later thread reuses the freed segment instead of being starved.
  std::thread second([&recorder] {
    recorder.Record(FlightEventType::kMergeCommit, 8);
  });
  second.join();
  EXPECT_EQ(recorder.lost_events(), 0u);
  EXPECT_EQ(recorder.recorded_events(), 2u);
}

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  FlightRecorder::Options options = SmallOptions(8, 2);
  options.enabled = false;
  FlightRecorder recorder(options);
  recorder.Record(FlightEventType::kMergeStart);
  EXPECT_EQ(recorder.recorded_events(), 0u);
  EXPECT_EQ(recorder.lost_events(), 0u);
  EXPECT_TRUE(recorder.Collect().empty());

  recorder.set_enabled(true);
  recorder.Record(FlightEventType::kMergeStart);
  EXPECT_EQ(recorder.recorded_events(), 1u);
}

TEST(FlightRecorderTest, DetailIsTruncatedTo23Bytes) {
  FlightRecorder recorder(SmallOptions(8, 1));
  recorder.Record(FlightEventType::kMaintenanceFailure, 0, 0,
                  "0123456789012345678901234567890");
  std::vector<FlightRecorder::Event> events = recorder.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].detail, "01234567890123456789012");
}

TEST(FlightRecorderTest, ConcurrentWritersPublishTornFreeEvents) {
  // Run under TSAN via the obs_tests binary. Each writer stamps its payload
  // with a thread tag so a torn slot (payload from one write, seq from
  // another) is detectable after the fact.
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  FlightRecorder recorder(SmallOptions(1024, kThreads + 1));
  // Every writer leases (first Record) and then waits for the others: all
  // four segments are live simultaneously even on a single-core host where
  // threads would otherwise run back-to-back and reuse one freed segment.
  std::latch leased(kThreads);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, &leased, t] {
      recorder.Record(FlightEventType::kEntryState, static_cast<uint64_t>(t),
                      static_cast<uint64_t>(t) << 32);
      leased.arrive_and_wait();
      for (uint64_t i = 1; i < kPerThread; ++i) {
        recorder.Record(FlightEventType::kEntryState,
                        static_cast<uint64_t>(t), (static_cast<uint64_t>(t)
                                                   << 32) |
                                                      i);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(recorder.recorded_events(), kThreads * kPerThread);
  EXPECT_EQ(recorder.lost_events(), 0u);
  std::vector<FlightRecorder::Event> events = recorder.Collect();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * 1024)
      << "every segment ring full";
  std::set<uint64_t> seqs;
  for (const FlightRecorder::Event& event : events) {
    EXPECT_TRUE(seqs.insert(event.seq).second) << "duplicate seq";
    EXPECT_LE(event.seq, kThreads * kPerThread);
    ASSERT_LT(event.a, static_cast<uint64_t>(kThreads));
    EXPECT_EQ(event.b >> 32, event.a) << "torn slot: payload halves disagree";
    EXPECT_EQ(event.type, FlightEventType::kEntryState);
  }
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const FlightRecorder::Event& x, const FlightRecorder::Event& y) {
        return x.seq < y.seq;
      }));
}

TEST(FlightRecorderTest, DumpJsonMatchesSchemaGolden) {
  // The dump schema is a contract: tools and humans parse it from stderr
  // after a crash. Byte-exact golden on a deterministic two-event timeline,
  // modulo the wall-clock t_us fields which are asserted separately.
  FlightRecorder recorder(SmallOptions(8, 1));
  recorder.Record(FlightEventType::kMergeStart, 1, 2, "Header");
  recorder.Record(FlightEventType::kAdmissionReject, 42, 0, "a\"b\\c");
  std::string json = recorder.DumpJson();

  // Scrub the timing fields, which are the only nondeterminism.
  std::string scrubbed;
  size_t pos = 0;
  while (pos < json.size()) {
    size_t t = json.find("\"t_us\":", pos);
    if (t == std::string::npos) {
      scrubbed += json.substr(pos);
      break;
    }
    t += 7;
    scrubbed += json.substr(pos, t - pos);
    scrubbed += "T";
    while (t < json.size() && json[t] >= '0' && json[t] <= '9') ++t;
    pos = t;
  }
  EXPECT_EQ(scrubbed,
            "{\"schema\":\"aggcache-flight-v1\",\"recorded\":2,\"lost\":0,"
            "\"events\":["
            "{\"seq\":1,\"t_us\":T,\"thread\":0,\"type\":\"merge_start\","
            "\"a\":1,\"b\":2,\"detail\":\"Header\"},"
            "{\"seq\":2,\"t_us\":T,\"thread\":0,"
            "\"type\":\"admission_reject\",\"a\":42,\"b\":0,"
            "\"detail\":\"a\\\"b\\\\c\"}"
            "]}");

  std::vector<FlightRecorder::Event> events = recorder.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].t_us, events[1].t_us);
}

TEST(FlightRecorderTest, GlobalRecorderIsEnabledAndUsable) {
  // The process-global instance: the free-function wrapper must land events
  // in it (other tests in this binary may also have recorded — only the
  // delta is asserted).
  uint64_t before = FlightRecorder::Global().recorded_events();
  RecordFlightEvent(FlightEventType::kSnapshotIssued, 123, 0, "Header");
  EXPECT_GE(FlightRecorder::Global().recorded_events(), before + 1);
}

}  // namespace
}  // namespace aggcache
