// Tests for the active-query registry (src/obs/active_queries.h) and its
// integration with the cache manager: a running query is visible in the
// registry with its current phase, elapsed time, and resource counters; a
// remote Cancel() unwinds it with the typed kCancelled status; and the
// registration/unregistration bookkeeping balances — no slots, contexts, or
// tracked query bytes left behind. The query is parked inside delta
// compensation deterministically with the cache.delta_comp kDelay fault
// point, the same mechanism the CI cancel round-trip uses.

#include "obs/active_queries.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cache/aggregate_cache_manager.h"
#include "gtest/gtest.h"
#include "obs/engine_metrics.h"
#include "runtime/memory_tracker.h"
#include "runtime/query_context.h"
#include "tests/test_util.h"
#include "verify/fault_injector.h"

namespace aggcache {
namespace {

class ActiveQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    cache_ = std::make_unique<AggregateCacheManager>(&db_);
    for (int64_t h = 1; h <= 10; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, h % 2 == 0 ? 2014 : 2013, 2, 10.0,
          &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  }

  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  /// Polls List() until a query whose phase matches arrives (or times out);
  /// returns its Info with id=0 on timeout.
  ActiveQueryRegistry::Info WaitForPhase(const std::string& phase,
                                         int timeout_ms = 5000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      for (const ActiveQueryRegistry::Info& info :
           ActiveQueryRegistry::Global().List()) {
        if (info.phase == phase) return info;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return ActiveQueryRegistry::Info{};
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  std::unique_ptr<AggregateCacheManager> cache_;
  int64_t next_item_id_ = 1;
  AggregateQuery query_ = testing_util::HeaderItemQuery();
};

TEST_F(ActiveQueryTest, RegistryIsEmptyAtRestAndAfterQueries) {
  ActiveQueryRegistry& registry = ActiveQueryRegistry::Global();
  EXPECT_EQ(registry.active_count(), 0u);
  EXPECT_TRUE(registry.List().empty());

  uint64_t registrations_before =
      EngineMetrics::Get().query_registrations->Value();
  Transaction txn = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, txn).ok());
  // The query registered on entry and unregistered on exit.
  EXPECT_EQ(EngineMetrics::Get().query_registrations->Value(),
            registrations_before + 1);
  EXPECT_EQ(registry.active_count(), 0u);
  EXPECT_TRUE(registry.List().empty());
  EXPECT_EQ(EngineMetrics::Get().active_queries->Value(), 0);
}

TEST_F(ActiveQueryTest, ListJsonSchemaOnEmptyRegistry) {
  std::string json = ActiveQueryRegistry::Global().ListJson();
  EXPECT_NE(json.find("\"schema\":\"aggcache-queries-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"active\":0"), std::string::npos);
  EXPECT_NE(json.find("\"queries\":[]"), std::string::npos);
}

TEST_F(ActiveQueryTest, CancelOnUnknownIdIsFalse) {
  EXPECT_FALSE(ActiveQueryRegistry::Global().Cancel(999999));
}

// The tentpole scenario: a query parked in delta compensation is visible in
// the registry with phase, statement, strategy, and elapsed time — then a
// remote Cancel unwinds it with the typed kCancelled status, and every
// tracker balances back to zero.
TEST_F(ActiveQueryTest, ParkedQueryIsVisibleAndRemotelyCancellable) {
  // Warm the cache so the second execution is a hit that must compensate.
  {
    Transaction warm = db_.Begin();
    ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  }
  // Fresh delta rows so delta compensation has work to do.
  for (int64_t h = 11; h <= 13; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(
        &db_, header_, item_, h, 2014, 2, 5.0, &next_item_id_));
  }
  // Park every delta-compensation subjoin task for 3 s: long enough for
  // the registry poll + cancel below, far below the test timeout.
  ASSERT_OK(FaultInjector::Global().ArmFromSpec(
      "cache.delta_comp:delay:3000"));

  QueryContext ctx;
  std::atomic<bool> done{false};
  Status query_status;
  std::thread worker([&] {
    ScopedQueryContext scope(&ctx);
    Transaction txn = db_.Begin();
    auto result = cache_->Execute(query_, txn);
    query_status = result.status();
    done.store(true);
  });

  ActiveQueryRegistry::Info info = WaitForPhase("delta_compensation");
  ASSERT_NE(info.id, 0u) << "query never became visible in /queries";
  EXPECT_FALSE(info.statement.empty());
  EXPECT_EQ(info.strategy, "cached-full-pruning");
  EXPECT_GT(info.elapsed_ms, 0.0);
  EXPECT_FALSE(info.aborting);

  // The JSON view carries the same query.
  std::string json = ActiveQueryRegistry::Global().ListJson();
  EXPECT_NE(json.find("\"phase\":\"delta_compensation\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"id\":" + std::to_string(info.id)),
            std::string::npos);

  uint64_t cancels_before =
      EngineMetrics::Get().remote_cancellations->Value();
  ASSERT_TRUE(ActiveQueryRegistry::Global().Cancel(info.id));
  EXPECT_EQ(EngineMetrics::Get().remote_cancellations->Value(),
            cancels_before + 1);

  worker.join();
  ASSERT_TRUE(done.load());
  EXPECT_EQ(query_status.code(), StatusCode::kCancelled)
      << query_status.ToString();
  EXPECT_EQ(ctx.abort_reason(), QueryAbortReason::kCancelled);

  // Bookkeeping balances: no live slots, no tracked query memory.
  EXPECT_EQ(ActiveQueryRegistry::Global().active_count(), 0u);
  EXPECT_TRUE(ActiveQueryRegistry::Global().List().empty());
  EXPECT_EQ(EngineMetrics::Get().active_queries->Value(), 0);
  EXPECT_EQ(MemoryTracker::Queries().used(), 0u);
}

TEST_F(ActiveQueryTest, CancelAfterCompletionIsFalse) {
  Transaction txn = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, txn).ok());
  // Whatever id that query had, it is gone now.
  EXPECT_TRUE(ActiveQueryRegistry::Global().List().empty());
}

TEST_F(ActiveQueryTest, ConcurrentQueriesGetDistinctSlots) {
  // Park queries briefly so several overlap; every one must get its own id
  // and every slot must be released afterwards.
  {
    Transaction warm = db_.Begin();
    ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  }
  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 20,
                                               2014, 2, 5.0,
                                               &next_item_id_));
  ASSERT_OK(
      FaultInjector::Global().ArmFromSpec("cache.delta_comp:delay:100"));
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      Transaction txn = db_.Begin();
      if (!cache_->Execute(query_, txn).ok()) failures.fetch_add(1);
    });
  }
  // While they run, List() must never return a torn record (id 0 rows are
  // filtered; statements are null-terminated copies).
  for (int i = 0; i < 50; ++i) {
    for (const ActiveQueryRegistry::Info& info :
         ActiveQueryRegistry::Global().List()) {
      EXPECT_NE(info.id, 0u);
      EXPECT_FALSE(info.statement.empty());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ActiveQueryRegistry::Global().active_count(), 0u);
  EXPECT_EQ(MemoryTracker::Queries().used(), 0u);
}

TEST_F(ActiveQueryTest, ListTextRendersATable) {
  std::string text = ActiveQueryRegistry::Global().ListText();
  EXPECT_NE(text.find("active queries"), std::string::npos) << text;
}

}  // namespace
}  // namespace aggcache
