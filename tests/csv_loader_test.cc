#include "workload/csv_loader.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class CsvLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
};

TEST_F(CsvLoaderTest, LoadsRowsWithHeader) {
  auto loaded = LoadCsvFromString(&db_, "Header",
                                  "HeaderID,FiscalYear\n"
                                  "1,2013\n"
                                  "2,2014\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 2u);
  EXPECT_TRUE(header_->FindByPk(Value(int64_t{1})).has_value());
  auto loc = header_->FindByPk(Value(int64_t{2}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(header_->ValueAt(*loc, 1), Value(int64_t{2014}));
}

TEST_F(CsvLoaderTest, HeaderValidation) {
  auto wrong_name = LoadCsvFromString(&db_, "Header",
                                      "HeaderID,Year\n1,2013\n");
  EXPECT_FALSE(wrong_name.ok());
  auto wrong_count =
      LoadCsvFromString(&db_, "Header", "HeaderID\n1\n");
  EXPECT_FALSE(wrong_count.ok());
  auto empty = LoadCsvFromString(&db_, "Header", "");
  EXPECT_FALSE(empty.ok());
}

TEST_F(CsvLoaderTest, NoHeaderMode) {
  CsvLoadOptions options;
  options.has_header = false;
  auto loaded = LoadCsvFromString(&db_, "Header", "5,2012\n", options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 1u);
}

TEST_F(CsvLoaderTest, TypedParsingAndErrors) {
  ASSERT_TRUE(LoadCsvFromString(&db_, "Header",
                                "HeaderID,FiscalYear\n1,2013\n")
                  .ok());
  // Item: ItemID, HeaderID, Amount(double).
  auto ok = LoadCsvFromString(&db_, "Item",
                              "ItemID,HeaderID,Amount\n10,1,12.5\n");
  ASSERT_TRUE(ok.ok()) << ok.status();
  auto loc = item_->FindByPk(Value(int64_t{10}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(item_->ValueAt(*loc, 3), Value(12.5));

  auto bad_int = LoadCsvFromString(&db_, "Item",
                                   "ItemID,HeaderID,Amount\nxx,1,1.0\n");
  EXPECT_FALSE(bad_int.ok());
  auto bad_double = LoadCsvFromString(&db_, "Item",
                                      "ItemID,HeaderID,Amount\n11,1,abc\n");
  EXPECT_FALSE(bad_double.ok());
  auto bad_arity = LoadCsvFromString(&db_, "Item",
                                     "ItemID,HeaderID,Amount\n11,1\n");
  EXPECT_FALSE(bad_arity.ok());
}

TEST_F(CsvLoaderTest, QuotedFields) {
  Database db;
  auto table = db.CreateTable(SchemaBuilder("Notes")
                                  .AddColumn("id", ColumnType::kInt64)
                                  .PrimaryKey()
                                  .AddColumn("text", ColumnType::kString)
                                  .Build());
  ASSERT_TRUE(table.ok());
  auto loaded = LoadCsvFromString(
      &db, "Notes",
      "id,text\n"
      "1,\"hello, world\"\n"
      "2,\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto loc = (*table)->FindByPk(Value(int64_t{1}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ((*table)->ValueAt(*loc, 1), Value("hello, world"));
  loc = (*table)->FindByPk(Value(int64_t{2}));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ((*table)->ValueAt(*loc, 1), Value("she said \"hi\""));
}

TEST_F(CsvLoaderTest, UnterminatedQuoteFails) {
  Database db;
  ASSERT_TRUE(db.CreateTable(SchemaBuilder("T")
                                 .AddColumn("s", ColumnType::kString)
                                 .Build())
                  .ok());
  CsvLoadOptions options;
  options.has_header = false;
  EXPECT_FALSE(LoadCsvFromString(&db, "T", "\"oops\n", options).ok());
}

TEST_F(CsvLoaderTest, RowsPerTransactionSharesTids) {
  CsvLoadOptions options;
  options.rows_per_transaction = 2;
  auto loaded = LoadCsvFromString(&db_, "Header",
                                  "HeaderID,FiscalYear\n"
                                  "1,2013\n2,2013\n3,2013\n",
                                  options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // Rows 1 and 2 share a tid (one transaction); row 3 has a new one.
  const Partition& delta = header_->group(0).delta;
  EXPECT_EQ(delta.create_tid(0), delta.create_tid(1));
  EXPECT_NE(delta.create_tid(1), delta.create_tid(2));
}

TEST_F(CsvLoaderTest, CustomDelimiter) {
  CsvLoadOptions options;
  options.delimiter = '\t';
  auto loaded = LoadCsvFromString(&db_, "Header",
                                  "HeaderID\tFiscalYear\n7\t2010\n",
                                  options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(header_->FindByPk(Value(int64_t{7})).has_value());
}

TEST_F(CsvLoaderTest, ForeignKeysEnforcedDuringLoad) {
  // Item rows referencing a missing header are rejected.
  auto loaded = LoadCsvFromString(&db_, "Item",
                                  "ItemID,HeaderID,Amount\n1,999,1.0\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CsvLoaderTest, UnknownTable) {
  EXPECT_FALSE(LoadCsvFromString(&db_, "Nope", "a\n1\n").ok());
}

}  // namespace
}  // namespace aggcache
