#include "cache/aggregate_cache_manager.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

using testing_util::ExpectAllStrategiesAgree;

class CacheManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    cache_ = std::make_unique<AggregateCacheManager>(&db_);
    for (int64_t h = 1; h <= 10; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, h % 2 == 0 ? 2014 : 2013, 2, 10.0,
          &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  std::unique_ptr<AggregateCacheManager> cache_;
  int64_t next_item_id_ = 1;
  AggregateQuery query_ = testing_util::HeaderItemQuery();
};

TEST_F(CacheManagerTest, MissCreatesEntryHitReuses) {
  Transaction txn = db_.Begin();
  auto first = cache_->Execute(query_, txn);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(cache_->last_exec_stats().entry_created);
  EXPECT_FALSE(cache_->last_exec_stats().cache_hit);
  EXPECT_EQ(cache_->num_entries(), 1u);

  auto second = cache_->Execute(query_, txn);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(cache_->last_exec_stats().cache_hit);
  EXPECT_FALSE(cache_->last_exec_stats().entry_created);
  std::string diff;
  EXPECT_TRUE(first->ApproxEquals(*second, 1e-9, &diff)) << diff;
}

TEST_F(CacheManagerTest, CachedEqualsUncachedOnCleanState) {
  ExpectAllStrategiesAgree(&db_, cache_.get(), query_);
}

TEST_F(CacheManagerTest, CachedEqualsUncachedWithDeltaRows) {
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  for (int64_t h = 11; h <= 14; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(
        &db_, header_, item_, h, 2014, 3, 5.0, &next_item_id_));
  }
  Transaction txn = db_.Begin();
  ASSERT_OK(item_->Insert(
      txn, {Value(next_item_id_++), Value(int64_t{1}), Value(7.0)}));
  ExpectAllStrategiesAgree(&db_, cache_.get(), query_);
}

TEST_F(CacheManagerTest, FullPruningSkipsSubjoins) {
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 20,
                                               2014, 2, 1.0,
                                               &next_item_id_));
  Transaction txn = db_.Begin();
  ExecutionOptions no_pruning;
  no_pruning.strategy = ExecutionStrategy::kCachedNoPruning;
  ASSERT_TRUE(cache_->Execute(query_, txn, no_pruning).ok());
  uint64_t subjoins_no_pruning = cache_->last_exec_stats().subjoins_executed;

  ExecutionOptions full;
  full.strategy = ExecutionStrategy::kCachedFullPruning;
  ASSERT_TRUE(cache_->Execute(query_, txn, full).ok());
  uint64_t subjoins_full = cache_->last_exec_stats().subjoins_executed;
  EXPECT_EQ(subjoins_no_pruning, 3u);  // 2^2 - 1.
  EXPECT_EQ(subjoins_full, 1u);        // Only delta x delta.
  EXPECT_EQ(cache_->last_exec_stats().subjoins_pruned, 2u);
}

TEST_F(CacheManagerTest, MainCompensationAfterDelete) {
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  // Delete a header (its items become dangling but the join drops them).
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{1})));
  ExpectAllStrategiesAgree(&db_, cache_.get(), query_);
}

TEST_F(CacheManagerTest, SingleTableMainCompensationIsIncremental) {
  AggregateQuery single = QueryBuilder()
                              .From("Item")
                              .GroupBy("Item", "HeaderID")
                              .Sum("Item", "Amount", "total")
                              .CountStar("n")
                              .Build();
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(single, warm).ok());
  // Delete two items from main.
  Transaction txn = db_.Begin();
  ASSERT_OK(item_->DeleteByPk(txn, Value(int64_t{1})));
  ASSERT_OK(item_->DeleteByPk(txn, Value(int64_t{2})));
  Transaction query_txn = db_.Begin();
  auto result = cache_->Execute(single, query_txn);
  ASSERT_TRUE(result.ok());
  // Single-table entries are compensated, not rebuilt.
  EXPECT_FALSE(cache_->last_exec_stats().entry_rebuilt);
  EXPECT_GT(cache_->last_exec_stats().main_comp_ms, 0.0);
  ExpectAllStrategiesAgree(&db_, cache_.get(), single);
}

TEST_F(CacheManagerTest, JoinEntryCompensatedIncrementallyByDefault) {
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->UpdateByPk(txn, Value(int64_t{2}),
                                {Value(int64_t{2}), Value(int64_t{2013})}));
  Transaction query_txn = db_.Begin();
  auto result = cache_->Execute(query_, query_txn);
  ASSERT_TRUE(result.ok());
  // The default config corrects the entry via negative-delta joins, no
  // rebuild (the Section 8 extension).
  EXPECT_FALSE(cache_->last_exec_stats().entry_rebuilt);
  EXPECT_GT(cache_->last_exec_stats().main_comp_ms, 0.0);
  ExpectAllStrategiesAgree(&db_, cache_.get(), query_);
}

TEST_F(CacheManagerTest, JoinEntryRebuiltWhenIncrementalDisabled) {
  AggregateCacheManager::Config config;
  config.incremental_join_main_compensation = false;
  AggregateCacheManager rebuild_cache(&db_, config);
  Transaction warm = db_.Begin();
  ASSERT_TRUE(rebuild_cache.Execute(query_, warm).ok());
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->UpdateByPk(txn, Value(int64_t{2}),
                                {Value(int64_t{2}), Value(int64_t{2013})}));
  Transaction query_txn = db_.Begin();
  auto result = rebuild_cache.Execute(query_, query_txn);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(rebuild_cache.last_exec_stats().entry_rebuilt);
  ExpectAllStrategiesAgree(&db_, &rebuild_cache, query_);
}

TEST_F(CacheManagerTest, IncrementalAndRebuildCompensationAgree) {
  AggregateCacheManager::Config rebuild_config;
  rebuild_config.incremental_join_main_compensation = false;
  AggregateCacheManager rebuild_cache(&db_, rebuild_config);
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  ASSERT_TRUE(rebuild_cache.Execute(query_, warm).ok());

  // A batch of updates and deletes on both join sides.
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->UpdateByPk(txn, Value(int64_t{1}),
                                {Value(int64_t{1}), Value(int64_t{2014})}));
  ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{3})));
  ASSERT_OK(item_->DeleteByPk(txn, Value(int64_t{5})));
  ASSERT_OK(item_->DeleteByPk(txn, Value(int64_t{6})));

  Transaction query_txn = db_.Begin();
  auto incremental = cache_->Execute(query_, query_txn);
  auto rebuilt = rebuild_cache.Execute(query_, query_txn);
  ASSERT_TRUE(incremental.ok() && rebuilt.ok());
  std::string diff;
  EXPECT_TRUE(incremental->ApproxEquals(*rebuilt, 1e-9, &diff)) << diff;
}

TEST_F(CacheManagerTest, MergeMaintainsEntryIncrementally) {
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  for (int64_t h = 30; h <= 32; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(
        &db_, header_, item_, h, 2013, 2, 4.0, &next_item_id_));
  }
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  // Entry was maintained during the merge: using it is a plain hit with no
  // rebuild, and the result matches uncached execution.
  Transaction txn = db_.Begin();
  auto result = cache_->Execute(query_, txn);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(cache_->last_exec_stats().cache_hit);
  EXPECT_FALSE(cache_->last_exec_stats().entry_rebuilt);
  const CacheEntry* entry = cache_->Find(query_);
  ASSERT_NE(entry, nullptr);
  EXPECT_GT(entry->metrics().maintenance_ms, 0.0);
  ExpectAllStrategiesAgree(&db_, cache_.get(), query_);
}

TEST_F(CacheManagerTest, MergeWithKeepInvalidated) {
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{3})));
  MergeOptions keep;
  keep.keep_invalidated = true;
  ASSERT_OK(db_.Merge("Header", keep));
  ASSERT_OK(db_.Merge("Item", keep));
  ExpectAllStrategiesAgree(&db_, cache_.get(), query_);
}

TEST_F(CacheManagerTest, NonCacheableQueryFallsBack) {
  AggregateQuery minmax = QueryBuilder()
                              .From("Item")
                              .GroupBy("Item", "HeaderID")
                              .Max("Item", "Amount", "m")
                              .Build();
  Transaction txn = db_.Begin();
  auto result = cache_->Execute(minmax, txn);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(cache_->last_exec_stats().used_cache);
  EXPECT_EQ(cache_->num_entries(), 0u);
}

TEST_F(CacheManagerTest, AdmissionRejectsCheapAggregates) {
  AggregateCacheManager::Config config;
  config.min_main_exec_ms = 1e9;  // Nothing is ever this expensive.
  AggregateCacheManager picky(&db_, config);
  Transaction txn = db_.Begin();
  auto result = picky.Execute(query_, txn);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(picky.num_entries(), 0u);
  EXPECT_FALSE(picky.last_exec_stats().used_cache);
  // The result is still correct.
  ExecutionOptions uncached;
  uncached.strategy = ExecutionStrategy::kUncached;
  auto baseline = picky.Execute(query_, txn, uncached);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(result->ApproxEquals(*baseline));
}

TEST_F(CacheManagerTest, EvictionRespectsMaxEntries) {
  AggregateCacheManager::Config config;
  config.max_entries = 2;
  AggregateCacheManager small(&db_, config);
  Transaction txn = db_.Begin();
  for (int64_t year : {2013, 2014, 2015}) {
    AggregateQuery q = QueryBuilder()
                           .From("Header")
                           .Join("Item", "HeaderID", "HeaderID")
                           .Filter("Header", "FiscalYear", CompareOp::kEq,
                                   Value(year))
                           .GroupBy("Header", "FiscalYear")
                           .Sum("Item", "Amount", "s")
                           .Build();
    ASSERT_TRUE(small.Execute(q, txn).ok());
  }
  EXPECT_EQ(small.num_entries(), 2u);
}

TEST_F(CacheManagerTest, ClearRemovesEntries) {
  Transaction txn = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, txn).ok());
  EXPECT_EQ(cache_->num_entries(), 1u);
  EXPECT_GT(cache_->total_bytes(), 0u);
  cache_->Clear();
  EXPECT_EQ(cache_->num_entries(), 0u);
  EXPECT_EQ(cache_->total_bytes(), 0u);
}

TEST_F(CacheManagerTest, PrewarmBuildsEntry) {
  ASSERT_OK(cache_->Prewarm(query_));
  EXPECT_EQ(cache_->num_entries(), 1u);
  Transaction txn = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, txn).ok());
  EXPECT_TRUE(cache_->last_exec_stats().cache_hit);
}

TEST_F(CacheManagerTest, PrewarmRejectsNonCacheable) {
  AggregateQuery minmax = QueryBuilder()
                              .From("Item")
                              .GroupBy("Item", "HeaderID")
                              .Min("Item", "Amount", "m")
                              .Build();
  EXPECT_FALSE(cache_->Prewarm(minmax).ok());
}

TEST_F(CacheManagerTest, EntryRebuiltAfterHotColdSplit) {
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, warm).ok());
  ASSERT_OK(header_->SplitHotCold("HeaderID", Value(int64_t{6})));
  ASSERT_OK(item_->SplitHotCold("HeaderID", Value(int64_t{6})));
  db_.RegisterAgingGroup({"Header", "Item"});
  Transaction txn = db_.Begin();
  auto result = cache_->Execute(query_, txn);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(cache_->last_exec_stats().entry_rebuilt);
  ExpectAllStrategiesAgree(&db_, cache_.get(), query_);
}

TEST_F(CacheManagerTest, MetricsAccumulate) {
  Transaction txn = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, txn).ok());
  ASSERT_TRUE(cache_->Execute(query_, txn).ok());
  const CacheEntry* entry = cache_->Find(query_);
  ASSERT_NE(entry, nullptr);
  // The first Execute is the miss that created the entry; only the second
  // is a hit that exercises delta compensation for profit accounting.
  EXPECT_EQ(entry->metrics().delta_comp_count, 1u);
  EXPECT_EQ(entry->metrics().hit_count, 1u);
  EXPECT_GT(entry->metrics().size_bytes, 0u);
  EXPECT_GT(entry->metrics().main_rows_aggregated, 0u);
}

TEST_F(CacheManagerTest, ColdExecuteLeavesHitCountZero) {
  Transaction txn = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, txn).ok());
  ASSERT_TRUE(cache_->last_exec_stats().entry_created);
  const CacheEntry* entry = cache_->Find(query_);
  ASSERT_NE(entry, nullptr);
  // The miss that created the entry saved nothing: it must not be credited
  // as a hit, nor may its compensation time skew AvgDeltaCompMs().
  EXPECT_EQ(entry->metrics().hit_count, 0u);
  EXPECT_EQ(entry->metrics().delta_comp_count, 0u);
  EXPECT_EQ(entry->metrics().total_delta_comp_ms, 0.0);
}

TEST_F(CacheManagerTest, CreateAndRebuildSurfaceMainExecMs) {
  Transaction txn = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, txn).ok());
  ASSERT_TRUE(cache_->last_exec_stats().entry_created);
  EXPECT_GT(cache_->last_exec_stats().main_exec_ms, 0.0);

  // A hot/cold split changes the partition layout, forcing the rebuild path
  // of GetOrCreateEntry; callers must see the build cost there too.
  ASSERT_OK(header_->SplitHotCold("HeaderID", Value(int64_t{6})));
  ASSERT_OK(item_->SplitHotCold("HeaderID", Value(int64_t{6})));
  db_.RegisterAgingGroup({"Header", "Item"});
  Transaction txn2 = db_.Begin();
  ASSERT_TRUE(cache_->Execute(query_, txn2).ok());
  ASSERT_TRUE(cache_->last_exec_stats().entry_rebuilt);
  EXPECT_GT(cache_->last_exec_stats().main_exec_ms, 0.0);
}

TEST_F(CacheManagerTest, EvictionByteAccountingMatchesRecomputation) {
  AggregateCacheManager::Config config;
  config.max_bytes = 1;  // Every insertion triggers an eviction storm.
  AggregateCacheManager small(&db_, config);
  Transaction txn = db_.Begin();
  for (int64_t year : {2013, 2014, 2015}) {
    AggregateQuery q = QueryBuilder()
                           .From("Header")
                           .Join("Item", "HeaderID", "HeaderID")
                           .Filter("Header", "FiscalYear", CompareOp::kEq,
                                   Value(year))
                           .GroupBy("Header", "FiscalYear")
                           .Sum("Item", "Amount", "s")
                           .Build();
    ASSERT_TRUE(small.Execute(q, txn).ok());
    EXPECT_EQ(small.total_bytes(), small.RecomputeTotalBytes());
  }
  // The byte budget keeps exactly the one unevictable entry alive.
  EXPECT_EQ(small.num_entries(), 1u);
  EXPECT_EQ(small.total_bytes(), small.RecomputeTotalBytes());

  // Mutations that resize resident entries keep the running total in step.
  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 40,
                                               2015, 2, 3.0,
                                               &next_item_id_));
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  EXPECT_EQ(small.total_bytes(), small.RecomputeTotalBytes());
}

TEST_F(CacheManagerTest, MergeSkipsEntriesNotReferencingMergedTable) {
  // An entry on an unrelated table must not be bound or maintained when
  // Header/Item merge.
  auto other_or = db_.CreateTable(SchemaBuilder("Other")
                                      .AddColumn("K", ColumnType::kInt64)
                                      .PrimaryKey()
                                      .AddColumn("V", ColumnType::kInt64)
                                      .Build());
  ASSERT_TRUE(other_or.ok()) << other_or.status();
  Table* other = other_or.value();
  Transaction setup = db_.Begin();
  ASSERT_OK(other->Insert(setup, {Value(int64_t{1}), Value(int64_t{7})}));
  AggregateQuery other_query = QueryBuilder()
                                   .From("Other")
                                   .GroupBy("Other", "K")
                                   .Sum("Other", "V", "s")
                                   .Build();
  Transaction warm = db_.Begin();
  ASSERT_TRUE(cache_->Execute(other_query, warm).ok());
  ASSERT_TRUE(cache_->Execute(query_, warm).ok());

  ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, 50,
                                               2014, 2, 2.0,
                                               &next_item_id_));
  ASSERT_OK(db_.MergeTables({"Header", "Item"}));

  const CacheEntry* other_entry = cache_->Find(other_query);
  ASSERT_NE(other_entry, nullptr);
  EXPECT_EQ(other_entry->metrics().maintenance_ms, 0.0);
  EXPECT_EQ(other_entry->metrics().maintenance_failures, 0u);
  ExpectAllStrategiesAgree(&db_, cache_.get(), query_);
  ExpectAllStrategiesAgree(&db_, cache_.get(), other_query);
}

TEST_F(CacheManagerTest, StrategyNames) {
  EXPECT_STREQ(ExecutionStrategyToString(ExecutionStrategy::kUncached),
               "uncached");
  EXPECT_STREQ(
      ExecutionStrategyToString(ExecutionStrategy::kCachedNoPruning),
      "cached-no-pruning");
  EXPECT_STREQ(
      ExecutionStrategyToString(ExecutionStrategy::kCachedEmptyDeltaPruning),
      "cached-empty-delta-pruning");
  EXPECT_STREQ(
      ExecutionStrategyToString(ExecutionStrategy::kCachedFullPruning),
      "cached-full-pruning");
}

}  // namespace
}  // namespace aggcache
