// Deterministic concurrency tests for the serving path: single-flight
// materialization, readers racing merges and eviction, merge-daemon
// shutdown, and exclusion-list snapshot isolation (atomic write scopes).
// Run under -DAGGCACHE_SANITIZE=thread to validate the threading model;
// the randomized wall-clock companion is bench/stress_concurrent.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "storage/merge_daemon.h"
#include "tests/test_util.h"
#include "verify/fault_injector.h"

namespace aggcache {
namespace {

class ConcurrentStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    for (int64_t h = 1; h <= 20; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2010 + h % 5, 3, 2.5 * h, &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
    // Leave delta rows so cached execution has real compensation to run.
    for (int64_t h = 21; h <= 24; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2010 + h % 5, 2, 1.5 * h, &next_item_id_));
    }
  }

  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().ResetCounters();
  }

  /// Executes `query` cached and uncached in one transaction and bumps
  /// `mismatches` when they disagree — the invariant every concurrent
  /// reader below asserts.
  void CheckOnce(AggregateCacheManager* cache, const AggregateQuery& query,
                 ExecutionStrategy strategy, std::atomic<int>* mismatches) {
    Transaction txn = db_.Begin();
    ExecutionOptions uncached;
    uncached.strategy = ExecutionStrategy::kUncached;
    auto baseline = cache->Execute(query, txn, uncached);
    ExecutionOptions options;
    options.strategy = strategy;
    auto result = cache->Execute(query, txn, options);
    if (!baseline.ok() || !result.ok() ||
        !result->ApproxEquals(*baseline, 1e-9)) {
      mismatches->fetch_add(1);
    }
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1;
  AggregateQuery query_ = testing_util::HeaderItemQuery();
};

TEST_F(ConcurrentStressTest, ConcurrentMissesMaterializeOnce) {
  // cache.build is hit once per entry materialization; armed at
  // probability 0 it never fires but still counts, turning the injector
  // into a build counter.
  FaultInjector::PointConfig count_only;
  count_only.probability = 0.0;
  FaultInjector::Global().Arm("cache.build", count_only);

  AggregateCacheManager cache(&db_);
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Transaction txn = db_.Begin();
      auto result = cache.Execute(query_, txn);
      if (!result.ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.num_entries(), 1u);
  // Single-flight: one creator built the entry, the other seven waited.
  EXPECT_EQ(FaultInjector::Global().stats("cache.build").hits, 1u);
}

TEST_F(ConcurrentStressTest, ReadersAgreeWithUncachedDuringMerges) {
  AggregateCacheManager cache(&db_);
  std::atomic<int> mismatches{0};
  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      ExecutionStrategy strategy = t % 2 == 0
                                       ? ExecutionStrategy::kCachedFullPruning
                                       : ExecutionStrategy::kCachedNoPruning;
      while (!stop.load(std::memory_order_relaxed)) {
        CheckOnce(&cache, query_, strategy, &mismatches);
      }
    });
  }
  // Interleave writes and synchronized merges with the running readers.
  for (int round = 0; round < 6; ++round) {
    ASSERT_OK(testing_util::InsertBusinessObject(
        &db_, header_, item_, 100 + round, 2012 + round % 3, 2, 4.0 + round,
        &next_item_id_));
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
  }
  stop.store(true);
  for (std::thread& thread : readers) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrentStressTest, EvictionChurnNeverCorruptsReaders) {
  // One slot, two cacheable queries: every other execution evicts the
  // peer's entry while its readers may still hold the value shared_ptr.
  AggregateCacheManager::Config config;
  config.max_entries = 1;
  AggregateCacheManager cache(&db_, config);
  AggregateQuery by_header = QueryBuilder()
                                 .From("Item")
                                 .GroupBy("Item", "HeaderID")
                                 .Sum("Item", "Amount", "total")
                                 .CountStar("n")
                                 .Build();
  std::atomic<int> mismatches{0};
  constexpr int kThreads = 4;
  constexpr int kRepsPerThread = 12;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRepsPerThread; ++r) {
        const AggregateQuery& query = (t + r) % 2 == 0 ? query_ : by_header;
        CheckOnce(&cache, query, ExecutionStrategy::kCachedFullPruning,
                  &mismatches);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache.num_entries(), 1u);
}

TEST_F(ConcurrentStressTest, DaemonStopsCleanlyMidMerge) {
  // Hold every merge publish open for a while so Stop() reliably lands
  // while a merge is in flight; Stop must wait for it, not abandon it.
  FaultInjector::PointConfig slow_publish;
  slow_publish.kind = FaultInjector::FaultKind::kDelay;
  slow_publish.delay_ms = 30.0;
  FaultInjector::Global().Arm("storage.merge.publish", slow_publish);

  db_.RegisterMergeGroup({"Header", "Item"}, 1);
  MergeDaemonOptions options;
  options.poll_interval = std::chrono::milliseconds(1);
  MergeDaemon daemon(db_, options);
  daemon.Start();
  // The delta already exceeds the threshold, so the first tick merges.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  daemon.Stop();
  EXPECT_FALSE(daemon.running());
  MergeDaemonStats stats = daemon.stats();
  EXPECT_GE(stats.merges_attempted, 1u);
  EXPECT_EQ(stats.merges_aborted, 0u);
  FaultInjector::Global().DisarmAll();
  // The interrupted-at-publish merge must have committed whole groups
  // only: results still agree with a fresh uncached execution.
  AggregateCacheManager cache(&db_);
  std::atomic<int> mismatches{0};
  CheckOnce(&cache, query_, ExecutionStrategy::kCachedFullPruning,
            &mismatches);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrentStressTest, AtomicScopeInvisibleUntilEnd) {
  Executor executor(&db_);
  auto rows_for_year = [&](const Snapshot& snapshot, int64_t year) {
    auto result = executor.ExecuteUncached(query_, snapshot);
    EXPECT_TRUE(result.ok()) << result.status();
    for (const auto& [key, entry] : result->groups()) {
      if (key.values[0].AsInt64() == year) return true;
    }
    return false;
  };

  Snapshot during;
  {
    ScopedTransaction txn = db_.BeginAtomic();
    ASSERT_OK(header_->Insert(txn, {Value(int64_t{500}),
                                    Value(int64_t{2099})}));
    // A snapshot taken mid-scope includes the tid range but excludes the
    // scope: the half-inserted object must be invisible to it...
    during = db_.Begin().snapshot();
    ASSERT_OK(item_->Insert(txn, {Value(next_item_id_++),
                                  Value(int64_t{500}), Value(9.0)}));
    EXPECT_FALSE(rows_for_year(during, 2099));
    // ...while the scope itself sees its own writes.
    EXPECT_TRUE(rows_for_year(txn.snapshot(), 2099));
  }
  // The exclusion is permanent for that snapshot — repeatable reads even
  // after the scope has ended...
  EXPECT_FALSE(rows_for_year(during, 2099));
  // ...and snapshots taken after the scope ends see the whole object.
  EXPECT_TRUE(rows_for_year(db_.Begin().snapshot(), 2099));
}

TEST_F(ConcurrentStressTest, AtomicScopeIsInsertOnly) {
  ScopedTransaction txn = db_.BeginAtomic();
  Status update = header_->UpdateByPk(
      txn, Value(int64_t{1}), {Value(int64_t{1}), Value(int64_t{2020})});
  EXPECT_EQ(update.code(), StatusCode::kFailedPrecondition);
  Status del = item_->DeleteByPk(txn, Value(int64_t{1}));
  EXPECT_EQ(del.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ConcurrentStressTest, CachedReadersNeverSeeHalfAnObject) {
  // Writers insert whole business objects through atomic scopes while
  // readers pin one snapshot and execute twice; both executions must
  // agree with each other (repeatable) and with the uncached engine.
  AggregateCacheManager cache(&db_);
  std::atomic<int> mismatches{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t h = 300;
    int64_t item_id = 100000;  // Clear of the fixture's item-id range.
    while (!stop.load(std::memory_order_relaxed)) {
      ScopedTransaction txn = db_.BeginAtomic();
      if (!header_->Insert(txn, {Value(h), Value(int64_t{2015})}).ok() ||
          !item_->Insert(txn, {Value(item_id++), Value(h), Value(1.0)})
               .ok() ||
          !item_->Insert(txn, {Value(item_id++), Value(h), Value(2.0)})
               .ok()) {
        mismatches.fetch_add(1);
        break;
      }
      ++h;
    }
  });
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int r = 0; r < 16; ++r) {
        CheckOnce(&cache, query_, ExecutionStrategy::kCachedFullPruning,
                  &mismatches);
      }
    });
  }
  for (std::thread& thread : readers) thread.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ConcurrentStressTest, MetricsRegistryIsThreadSafe) {
  // Updaters hammer one registry over relaxed atomics while other threads
  // concurrently register new metrics and render expositions (both take
  // the registry mutex). TSAN validates the locking discipline; the final
  // totals validate that no update was lost.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stress_total", "stress counter");
  Gauge* gauge = registry.GetGauge("stress_gauge", "stress gauge");
  Histogram* histogram = registry.GetHistogram("stress_us", "stress hist");

  constexpr int kUpdaters = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kUpdaters; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter->Increment();
        gauge->Add(t % 2 == 0 ? 1 : -1);
        histogram->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  // Registrations race the updates and the renders.
  workers.emplace_back([&] {
    for (int i = 0; i < 64; ++i) {
      registry.GetCounter("side_" + std::to_string(i), "side")->Increment();
    }
  });
  std::atomic<bool> stop{false};
  std::thread renderer([&] {
    // do-while: on a loaded single-core host this thread (spawned last) can
    // be starved until the updaters finish; it must still render at least
    // once so the totals below are checked against a concurrent exposition.
    int renders = 0;
    do {
      std::string text = registry.RenderPrometheus();
      std::string json = registry.RenderJson();
      if (text.empty() || json.empty()) break;
      ++renders;
    } while (!stop.load(std::memory_order_relaxed));
    EXPECT_GT(renders, 0);
  });
  for (std::thread& worker : workers) worker.join();
  stop.store(true);
  renderer.join();

  EXPECT_EQ(counter->Value(), uint64_t{kUpdaters} * kIters);
  EXPECT_EQ(gauge->Value(), 0);  // Two +1 updaters, two -1 updaters.
  EXPECT_EQ(histogram->TotalCount(), uint64_t{kUpdaters} * kIters);
  EXPECT_EQ(registry.num_metrics(), 3u + 64u);
}

// The flight recorder claims lock-freedom and torn-read safety; here real
// engine activity (cached readers + merges, which record merge/entry-state/
// snapshot events internally) races direct Record() writers and a dumper.
// Run under -DAGGCACHE_SANITIZE=thread for the memory-model proof.
TEST_F(ConcurrentStressTest, FlightRecorderSurvivesConcurrentWritersAndDumps) {
  FlightRecorder& recorder = FlightRecorder::Global();
  const uint64_t recorded_before = recorder.recorded_events();

  AggregateCacheManager cache(&db_);
  ASSERT_OK(cache.Prewarm(query_));

  std::atomic<int> mismatches{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  // Engine traffic: readers (entry-state + snapshot events inside the
  // manager) racing a merge loop (merge start/commit events).
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        CheckOnce(&cache, query_, ExecutionStrategy::kCachedFullPruning,
                  &mismatches);
      }
    });
  }
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Status merged = db_.MergeTables({"Header", "Item"});
      if (!merged.ok()) break;  // nothing to merge is fine
    }
  });
  // Direct writers hammering Record() with a recognizable payload.
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&recorder, &stop, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        recorder.Record(FlightEventType::kFaultInjected,
                        static_cast<uint64_t>(w), ++i, "stress");
      }
    });
  }
  // A dumper racing all of the above through the seq-validation protocol.
  std::thread dumper([&recorder, &stop] {
    int dumps = 0;
    while (!stop.load(std::memory_order_relaxed) && dumps < 50) {
      std::string json = recorder.DumpJson(/*max_events=*/256);
      EXPECT_NE(json.find("\"schema\":\"aggcache-flight-v1\""),
                std::string::npos);
      ++dumps;
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  dumper.join();
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(recorder.recorded_events(), recorded_before);
  // Post-quiesce harvest must be internally consistent: strictly increasing
  // seqs and valid event types end to end.
  std::vector<FlightRecorder::Event> events = recorder.Collect(1024);
  ASSERT_FALSE(events.empty());
  uint64_t last_seq = 0;
  for (const FlightRecorder::Event& event : events) {
    EXPECT_GT(event.seq, last_seq);
    last_seq = event.seq;
    EXPECT_LE(static_cast<uint8_t>(event.type),
              static_cast<uint8_t>(FlightEventType::kMaintenanceFailure));
  }
}

}  // namespace
}  // namespace aggcache
