#include "query/subjoin.h"

#include <set>

#include "gtest/gtest.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class SubjoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    tables_ = {header_, item_};
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  std::vector<const Table*> tables_;
};

TEST_F(SubjoinTest, TwoTablesSingleGroupGiveFourCombinations) {
  auto all = EnumerateAllCombinations(tables_);
  EXPECT_EQ(all.size(), 4u);  // 2^2.
  auto compensation = EnumerateCompensationCombinations(tables_);
  EXPECT_EQ(compensation.size(), 3u);  // 2^2 - 1.
  auto mains = EnumerateAllMainCombinations(tables_);
  ASSERT_EQ(mains.size(), 1u);
  EXPECT_TRUE(IsAllMain(mains[0]));
  for (const SubjoinCombination& combo : compensation) {
    EXPECT_FALSE(IsAllMain(combo));
  }
}

TEST_F(SubjoinTest, ExponentialGrowthWithTables) {
  // The paper's 2^t blow-up: 3 tables -> 8 subjoins, 7 to compensate.
  std::vector<const Table*> three = {header_, item_, header_};
  EXPECT_EQ(EnumerateAllCombinations(three).size(), 8u);
  EXPECT_EQ(EnumerateCompensationCombinations(three).size(), 7u);
  std::vector<const Table*> four = {header_, item_, header_, item_};
  EXPECT_EQ(EnumerateAllCombinations(four).size(), 16u);
  EXPECT_EQ(EnumerateCompensationCombinations(four).size(), 15u);
}

TEST_F(SubjoinTest, HotColdDoublesPartitionsPerTable) {
  // Split Header into hot/cold: 4 partitions for it, 2 for Item -> 8 total
  // combos, 2 all-main combos (hot-main, cold-main) x Item main.
  ASSERT_OK(db_.Merge("Header"));
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{1}), Value(int64_t{2010})}));
  ASSERT_OK(db_.Merge("Header"));
  ASSERT_OK(header_->SplitHotCold("FiscalYear", Value(int64_t{2012})));
  auto all = EnumerateAllCombinations(tables_);
  EXPECT_EQ(all.size(), 8u);
  auto mains = EnumerateAllMainCombinations(tables_);
  EXPECT_EQ(mains.size(), 2u);
  EXPECT_EQ(EnumerateCompensationCombinations(tables_).size(), 6u);
}

TEST_F(SubjoinTest, ResolvePartition) {
  const Partition& main =
      ResolvePartition(*header_, {0, PartitionKind::kMain});
  EXPECT_EQ(main.kind(), PartitionKind::kMain);
  const Partition& delta =
      ResolvePartition(*header_, {0, PartitionKind::kDelta});
  EXPECT_EQ(delta.kind(), PartitionKind::kDelta);
}

TEST_F(SubjoinTest, PartitionRefOrderingAndEquality) {
  PartitionRef a{0, PartitionKind::kMain};
  PartitionRef b{0, PartitionKind::kDelta};
  PartitionRef c{1, PartitionKind::kMain};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == PartitionRef({0, PartitionKind::kMain}));
  EXPECT_FALSE(a == b);
}

TEST_F(SubjoinTest, CombinationToString) {
  SubjoinCombination combo = {{0, PartitionKind::kMain},
                              {0, PartitionKind::kDelta}};
  EXPECT_EQ(CombinationToString(combo), "[g0/main, g0/delta]");
}

TEST_F(SubjoinTest, CombinationsPartitionTheCrossProduct) {
  // Every (partition choice per table) appears exactly once.
  auto all = EnumerateAllCombinations(tables_);
  std::set<std::string> seen;
  for (const SubjoinCombination& combo : all) {
    EXPECT_TRUE(seen.insert(CombinationToString(combo)).second);
    EXPECT_EQ(combo.size(), tables_.size());
  }
}

}  // namespace
}  // namespace aggcache
