// Tests for query tracing (src/obs/query_trace.h): exact ToText/ToJson
// renderings (golden — CI keys on them), TraceContext scoping, and
// end-to-end EXPLAIN traces over a three-table MD join — every {main,delta}
// subjoin combination must appear exactly once with tid ranges and a
// verdict, and the verdict counts must reconcile exactly with the
// process-wide metrics registry.

#include "obs/query_trace.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/engine_metrics.h"
#include "query/subjoin.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

QueryTrace MakeGoldenTrace() {
  QueryTrace trace;
  trace.statement = "SELECT SUM(Qty) FROM ...";
  trace.strategy = "cached-full-pruning";
  trace.use_pushdown = true;
  trace.snapshot_tid = 42;
  trace.cache_outcome = "hit";
  trace.build_ms = 0.0;
  trace.main_comp_ms = 0.5;
  trace.delta_comp_ms = 1.25;
  trace.total_ms = 2.0;
  trace.admission_wait_us = 15;
  trace.mem_peak_bytes = 4096;

  SubjoinTrace pushdown;
  pushdown.phase = "delta-compensation";
  pushdown.combination = "[g0/main, g0/delta]";
  pushdown.verdict = SubjoinTrace::Verdict::kPushdown;
  pushdown.tid_ranges = {{"Item[g0/delta].tid_Header", false, 21, 24},
                         {"Header[g0/main].tid_Header", false, 1, 20}};
  pushdown.pushdown_filters = {"Header.tid_Header >= 21"};

  SubjoinTrace pruned;
  pruned.phase = "delta-compensation";
  pruned.combination = "[g0/delta, g0/delta]";
  pruned.verdict = SubjoinTrace::Verdict::kPruned;
  pruned.prune_reason = "empty-partition";
  pruned.tid_ranges = {{"Item[g0/delta].tid_Item", true, 0, 0}};

  trace.subjoins = {pushdown, pruned};
  return trace;
}

TEST(QueryTraceTest, ToTextGolden) {
  EXPECT_EQ(MakeGoldenTrace().ToText(),
            "EXPLAIN AGGREGATE\n"
            "  statement: SELECT SUM(Qty) FROM ...\n"
            "  strategy: cached-full-pruning  pushdown: on\n"
            "  snapshot tid: 42\n"
            "  cache: hit\n"
            "  phases: build 0.000 ms, main-comp 0.500 ms, "
            "delta-comp 1.250 ms, total 2.000 ms\n"
            "  governance: admission-wait 15 us, mem-peak 4096 B\n"
            "  subjoins: 2 considered = 0 executed + 1 pushdown + 1 pruned\n"
            "    [delta-compensation] [g0/main, g0/delta] pushdown\n"
            "        Item[g0/delta].tid_Header tid=[21,24]  "
            "Header[g0/main].tid_Header tid=[1,20]\n"
            "        pushdown: Header.tid_Header >= 21\n"
            "    [delta-compensation] [g0/delta, g0/delta] pruned "
            "(empty-partition)\n"
            "        Item[g0/delta].tid_Item tid=[empty]\n");
}

TEST(QueryTraceTest, ToJsonGolden) {
  EXPECT_EQ(
      MakeGoldenTrace().ToJson(),
      "{\"statement\":\"SELECT SUM(Qty) FROM ...\","
      "\"strategy\":\"cached-full-pruning\",\"pushdown\":true,"
      "\"snapshot_tid\":42,\"cache\":\"hit\","
      "\"phases\":{\"build_ms\":0.000,\"main_comp_ms\":0.500,"
      "\"delta_comp_ms\":1.250,\"total_ms\":2.000},"
      "\"governance\":{\"admission_wait_us\":15,\"mem_peak_bytes\":4096,"
      "\"abort\":\"\"},"
      "\"subjoins\":["
      "{\"phase\":\"delta-compensation\","
      "\"combination\":\"[g0/main, g0/delta]\",\"verdict\":\"pushdown\","
      "\"reason\":\"\",\"tid_ranges\":["
      "{\"column\":\"Item[g0/delta].tid_Header\",\"empty\":false,"
      "\"min\":21,\"max\":24},"
      "{\"column\":\"Header[g0/main].tid_Header\",\"empty\":false,"
      "\"min\":1,\"max\":20}],"
      "\"pushdown_filters\":[\"Header.tid_Header >= 21\"]},"
      "{\"phase\":\"delta-compensation\","
      "\"combination\":\"[g0/delta, g0/delta]\",\"verdict\":\"pruned\","
      "\"reason\":\"empty-partition\",\"tid_ranges\":["
      "{\"column\":\"Item[g0/delta].tid_Item\",\"empty\":true}],"
      "\"pushdown_filters\":[]}]}");
}

TEST(QueryTraceTest, GovernanceAbortCauseRenders) {
  QueryTrace trace = MakeGoldenTrace();
  trace.abort_cause = "deadline-exceeded";
  EXPECT_NE(trace.ToText().find(
                "governance: admission-wait 15 us, mem-peak 4096 B, "
                "abort: deadline-exceeded\n"),
            std::string::npos)
      << trace.ToText();
  EXPECT_NE(trace.ToJson().find("\"abort\":\"deadline-exceeded\""),
            std::string::npos)
      << trace.ToJson();
}

TEST(QueryTraceTest, JsonEscapesQuotesAndNewlines) {
  QueryTrace trace;
  trace.statement = "line1\nsays \"hi\"\\";
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"statement\":\"line1\\nsays \\\"hi\\\"\\\\\""),
            std::string::npos)
      << json;
}

TEST(QueryTraceTest, TraceContextNestsAndRestores) {
  EXPECT_EQ(TraceContext::Current(), nullptr);
  QueryTrace outer;
  {
    TraceContext outer_scope(&outer);
    EXPECT_EQ(TraceContext::Current(), &outer);
    QueryTrace inner;
    {
      TraceContext inner_scope(&inner);
      EXPECT_EQ(TraceContext::Current(), &inner);
    }
    EXPECT_EQ(TraceContext::Current(), &outer);
  }
  EXPECT_EQ(TraceContext::Current(), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end: Header -> Item -> SubItem (two MD edges), traced through the
// cache manager.

/// Point-in-time copy of every counter the trace must reconcile with.
struct CounterSnapshot {
  uint64_t lookups, hits, misses, rebuilds;
  uint64_t exec_subjoins;
  uint64_t considered, pruned_empty, pruned_aging, pruned_tid_range;
  uint64_t pushdown_predicates;

  static CounterSnapshot Take() {
    const EngineMetrics& em = EngineMetrics::Get();
    CounterSnapshot s;
    s.lookups = em.cache_lookups->Value();
    s.hits = em.cache_hits->Value();
    s.misses = em.cache_misses->Value();
    s.rebuilds = em.cache_rebuilds->Value();
    s.exec_subjoins = em.exec_subjoins->Value();
    s.considered = em.prune_considered->Value();
    s.pruned_empty = em.pruned_empty->Value();
    s.pruned_aging = em.pruned_aging->Value();
    s.pruned_tid_range = em.pruned_tid_range->Value();
    s.pushdown_predicates = em.pushdown_predicates->Value();
    return s;
  }
};

class ExplainTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    auto sub_or = db_.CreateTable(
        SchemaBuilder("SubItem")
            .AddColumn("SubItemID", ColumnType::kInt64)
            .PrimaryKey()
            .AddColumn("ItemID", ColumnType::kInt64)
            .References("Item", "tid_Item")
            .AddColumn("Qty", ColumnType::kDouble)
            .OwnTid("tid_SubItem")
            .Build());
    ASSERT_TRUE(sub_or.ok()) << sub_or.status();
    sub_ = sub_or.value();
    // Three merged business objects, one fresh object left in the deltas:
    // every table has non-empty main and delta partitions, so all eight
    // {main,delta}^3 combinations are live.
    for (int64_t h = 1; h <= 3; ++h) {
      ASSERT_OK(InsertObject(h, 2013, /*items=*/2, /*subs=*/2));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item", "SubItem"}));
    ASSERT_OK(InsertObject(4, 2014, /*items=*/2, /*subs=*/2));
  }

  Status InsertObject(int64_t header_id, int64_t year, int items, int subs) {
    ScopedTransaction txn = db_.BeginAtomic();
    RETURN_IF_ERROR(
        header_->Insert(txn, {Value(header_id), Value(year)}));
    for (int i = 0; i < items; ++i) {
      int64_t item_id = next_item_id_++;
      RETURN_IF_ERROR(item_->Insert(
          txn, {Value(item_id), Value(header_id), Value(1.0)}));
      for (int s = 0; s < subs; ++s) {
        RETURN_IF_ERROR(sub_->Insert(
            txn, {Value(next_sub_id_++), Value(item_id), Value(2.0)}));
      }
    }
    return Status::Ok();
  }

  static AggregateQuery ThreeTableQuery() {
    return QueryBuilder()
        .From("Header")
        .Join("Item", "HeaderID", "HeaderID")
        .Join("SubItem", "ItemID", "ItemID")
        .GroupBy("Header", "FiscalYear")
        .Sum("SubItem", "Qty", "TotalQty")
        .CountStar("N")
        .Build();
  }

  /// All compensation combination strings for the bound three-table query.
  std::set<std::string> CompensationComboStrings() {
    auto bound = BoundQuery::Bind(db_, ThreeTableQuery());
    AGGCACHE_CHECK(bound.ok());
    std::set<std::string> combos;
    for (const SubjoinCombination& combo :
         EnumerateCompensationCombinations(bound->tables)) {
      combos.insert(CombinationToString(combo));
    }
    return combos;
  }

  StatusOr<AggregateResult> RunTraced(const ExecutionOptions& options,
                                      QueryTrace* trace) {
    Transaction txn = db_.Begin();
    return cache_.ExecuteTraced(ThreeTableQuery(), txn, options, trace);
  }

  /// delta(executor subjoins) must equal the trace's executed + pushdown
  /// verdicts, and every pruner counter must match its verdicts — the
  /// EXPLAIN output and the registry tell one story.
  void ExpectTraceReconciles(const QueryTrace& trace,
                             const CounterSnapshot& before,
                             const CounterSnapshot& after) {
    size_t executed = trace.CountVerdict(SubjoinTrace::Verdict::kExecuted);
    size_t pushdown = trace.CountVerdict(SubjoinTrace::Verdict::kPushdown);
    size_t pruned = trace.CountVerdict(SubjoinTrace::Verdict::kPruned);
    EXPECT_EQ(after.exec_subjoins - before.exec_subjoins,
              executed + pushdown);
    size_t decided = 0;  // Events that went through the pruner.
    for (const SubjoinTrace& subjoin : trace.subjoins) {
      if (subjoin.phase == "build" ||
          subjoin.phase == "delta-compensation") {
        ++decided;
      }
    }
    EXPECT_EQ(after.considered - before.considered, decided);
    EXPECT_EQ((after.pruned_empty - before.pruned_empty) +
                  (after.pruned_aging - before.pruned_aging) +
                  (after.pruned_tid_range - before.pruned_tid_range),
              pruned);
    EXPECT_EQ(after.lookups - before.lookups,
              (after.hits - before.hits) + (after.misses - before.misses));
  }

  Database db_;
  AggregateCacheManager cache_{&db_};
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  Table* sub_ = nullptr;
  int64_t next_item_id_ = 1;
  int64_t next_sub_id_ = 1;
};

TEST_F(ExplainTraceTest, ColdMissTracesBuildAndEveryCompensationCombo) {
  ExecutionOptions options;
  options.strategy = ExecutionStrategy::kCachedFullPruning;
  CounterSnapshot before = CounterSnapshot::Take();
  QueryTrace trace;
  auto result = RunTraced(options, &trace);
  ASSERT_TRUE(result.ok()) << result.status();
  CounterSnapshot after = CounterSnapshot::Take();

  EXPECT_EQ(trace.cache_outcome, "miss");
  EXPECT_EQ(trace.strategy,
            ExecutionStrategyToString(ExecutionStrategy::kCachedFullPruning));
  EXPECT_FALSE(trace.statement.empty());
  EXPECT_GT(trace.snapshot_tid, 0u);
  EXPECT_GT(trace.total_ms, 0.0);

  // One all-main build subjoin plus the 2^3 - 1 compensation combinations.
  ASSERT_EQ(trace.subjoins.size(), 8u);
  std::vector<const SubjoinTrace*> build_events;
  std::set<std::string> delta_combos;
  for (const SubjoinTrace& subjoin : trace.subjoins) {
    if (subjoin.phase == "build") {
      build_events.push_back(&subjoin);
    } else {
      EXPECT_EQ(subjoin.phase, "delta-compensation");
      EXPECT_TRUE(delta_combos.insert(subjoin.combination).second)
          << "duplicate " << subjoin.combination;
    }
    // Two MD edges (Item->Header, SubItem->Item), two sides each.
    EXPECT_EQ(subjoin.tid_ranges.size(), 4u) << subjoin.combination;
  }
  ASSERT_EQ(build_events.size(), 1u);
  EXPECT_EQ(build_events[0]->combination, "[g0/main, g0/main, g0/main]");
  EXPECT_EQ(build_events[0]->verdict, SubjoinTrace::Verdict::kExecuted);
  EXPECT_EQ(delta_combos, CompensationComboStrings());

  // The fresh object's rows only join each other: the all-delta combination
  // executes, the six cross-temperature ones are tid-range pruned.
  EXPECT_EQ(trace.CountVerdict(SubjoinTrace::Verdict::kExecuted), 2u);
  EXPECT_EQ(trace.CountVerdict(SubjoinTrace::Verdict::kPruned), 6u);
  for (const SubjoinTrace& subjoin : trace.subjoins) {
    if (subjoin.verdict == SubjoinTrace::Verdict::kPruned) {
      EXPECT_EQ(subjoin.prune_reason, "tid-range") << subjoin.combination;
    } else {
      EXPECT_TRUE(subjoin.prune_reason.empty());
    }
  }

  EXPECT_EQ(after.lookups - before.lookups, 1u);
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 0u);
  EXPECT_EQ(after.rebuilds - before.rebuilds, 1u);
  ExpectTraceReconciles(trace, before, after);

  // The traced answer is the real answer.
  ExecutionOptions uncached;
  uncached.strategy = ExecutionStrategy::kUncached;
  Transaction txn = db_.Begin();
  auto baseline = cache_.Execute(ThreeTableQuery(), txn, uncached);
  ASSERT_TRUE(baseline.ok());
  std::string diff;
  EXPECT_TRUE(result->ApproxEquals(*baseline, 1e-9, &diff)) << diff;
}

TEST_F(ExplainTraceTest, WarmHitTracesCompensationOnly) {
  ExecutionOptions options;
  options.strategy = ExecutionStrategy::kCachedFullPruning;
  QueryTrace cold;
  ASSERT_TRUE(RunTraced(options, &cold).ok());

  CounterSnapshot before = CounterSnapshot::Take();
  QueryTrace trace;
  auto result = RunTraced(options, &trace);
  ASSERT_TRUE(result.ok()) << result.status();
  CounterSnapshot after = CounterSnapshot::Take();

  EXPECT_EQ(trace.cache_outcome, "hit");
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.misses - before.misses, 0u);
  EXPECT_EQ(after.rebuilds - before.rebuilds, 0u);

  // No build phase on a hit: exactly the seven compensation combinations.
  ASSERT_EQ(trace.subjoins.size(), 7u);
  std::set<std::string> combos;
  for (const SubjoinTrace& subjoin : trace.subjoins) {
    EXPECT_EQ(subjoin.phase, "delta-compensation");
    EXPECT_TRUE(combos.insert(subjoin.combination).second);
    EXPECT_EQ(subjoin.tid_ranges.size(), 4u);
  }
  EXPECT_EQ(combos, CompensationComboStrings());
  EXPECT_GE(trace.CountVerdict(SubjoinTrace::Verdict::kPruned), 1u);
  ExpectTraceReconciles(trace, before, after);

  // Rendering covers every combination with its tid ranges.
  std::string text = trace.ToText();
  for (const std::string& combo : combos) {
    EXPECT_NE(text.find(combo), std::string::npos) << combo;
  }
  EXPECT_NE(text.find("tid=["), std::string::npos);
  EXPECT_NE(text.find("cache: hit"), std::string::npos);
}

TEST_F(ExplainTraceTest, PushdownVerdictsCarryFilters) {
  ExecutionOptions options;
  options.strategy = ExecutionStrategy::kCachedFullPruning;
  options.use_predicate_pushdown = true;
  QueryTrace cold;
  ASSERT_TRUE(RunTraced(options, &cold).ok());
  // A late sub-item under a merged item makes [main, main, delta]
  // non-prunable: its tid range reaches back into Item's main.
  {
    Transaction txn = db_.Begin();
    ASSERT_OK(sub_->Insert(
        txn, {Value(next_sub_id_++), Value(int64_t{1}), Value(2.0)}));
  }

  CounterSnapshot before = CounterSnapshot::Take();
  QueryTrace trace;
  auto result = RunTraced(options, &trace);
  ASSERT_TRUE(result.ok()) << result.status();
  CounterSnapshot after = CounterSnapshot::Take();

  EXPECT_EQ(trace.cache_outcome, "hit");
  size_t filters_in_trace = 0;
  for (const SubjoinTrace& subjoin : trace.subjoins) {
    if (subjoin.verdict == SubjoinTrace::Verdict::kPushdown) {
      EXPECT_FALSE(subjoin.pushdown_filters.empty()) << subjoin.combination;
    } else {
      EXPECT_TRUE(subjoin.pushdown_filters.empty()) << subjoin.combination;
    }
    filters_in_trace += subjoin.pushdown_filters.size();
  }
  EXPECT_GE(trace.CountVerdict(SubjoinTrace::Verdict::kPushdown), 1u);
  EXPECT_EQ(after.pushdown_predicates - before.pushdown_predicates,
            filters_in_trace);
  ExpectTraceReconciles(trace, before, after);
}

TEST_F(ExplainTraceTest, UncachedStrategyTracesAllCombinations) {
  ExecutionOptions options;
  options.strategy = ExecutionStrategy::kUncached;
  CounterSnapshot before = CounterSnapshot::Take();
  QueryTrace trace;
  auto result = RunTraced(options, &trace);
  ASSERT_TRUE(result.ok()) << result.status();
  CounterSnapshot after = CounterSnapshot::Take();

  EXPECT_EQ(trace.cache_outcome, "uncached");
  // Bypassing the cache consults no lookup — the counters must not move.
  EXPECT_EQ(after.lookups - before.lookups, 0u);
  EXPECT_EQ(after.hits - before.hits, 0u);
  EXPECT_EQ(after.misses - before.misses, 0u);
  // All 2^3 combinations run, recorded under the "uncached" phase.
  ASSERT_EQ(trace.subjoins.size(), 8u);
  std::set<std::string> combos;
  for (const SubjoinTrace& subjoin : trace.subjoins) {
    EXPECT_EQ(subjoin.phase, "uncached");
    EXPECT_EQ(subjoin.verdict, SubjoinTrace::Verdict::kExecuted);
    EXPECT_TRUE(combos.insert(subjoin.combination).second);
  }
  EXPECT_EQ(combos.size(), 8u);
  EXPECT_EQ(after.exec_subjoins - before.exec_subjoins, 8u);
}

TEST_F(ExplainTraceTest, UntracedExecutionRecordsNothing) {
  // Without a TraceContext the recorder is a thread-local null check: the
  // same execution paths run, no trace is filled anywhere.
  ExecutionOptions options;
  options.strategy = ExecutionStrategy::kCachedFullPruning;
  Transaction txn = db_.Begin();
  auto result = cache_.Execute(ThreeTableQuery(), txn, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(TraceContext::Current(), nullptr);
}

}  // namespace
}  // namespace aggcache
