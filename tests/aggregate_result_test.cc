#include "query/aggregate_result.h"

#include "gtest/gtest.h"

namespace aggcache {
namespace {

GroupKey Key(int64_t v) { return GroupKey{{Value(v)}}; }

TEST(AggregateFunctionTest, SelfMaintainability) {
  EXPECT_TRUE(IsSelfMaintainable(AggregateFunction::kSum));
  EXPECT_TRUE(IsSelfMaintainable(AggregateFunction::kCount));
  EXPECT_TRUE(IsSelfMaintainable(AggregateFunction::kAvg));
  EXPECT_TRUE(IsSelfMaintainable(AggregateFunction::kCountStar));
  EXPECT_FALSE(IsSelfMaintainable(AggregateFunction::kMin));
  EXPECT_FALSE(IsSelfMaintainable(AggregateFunction::kMax));
}

TEST(AggregateStateTest, IntSum) {
  AggregateState state;
  state.Add(Value(int64_t{3}));
  state.Add(Value(int64_t{4}));
  EXPECT_EQ(state.Finalize(AggregateFunction::kSum), Value(int64_t{7}));
  EXPECT_EQ(state.Finalize(AggregateFunction::kCount), Value(int64_t{2}));
}

TEST(AggregateStateTest, DoubleSumKeepsType) {
  AggregateState state;
  state.Add(Value(1.5));
  state.Add(Value(-1.5));
  // Sums to zero but remains a double.
  EXPECT_EQ(state.Finalize(AggregateFunction::kSum), Value(0.0));
}

TEST(AggregateStateTest, AvgIsSumOverCount) {
  AggregateState state;
  state.Add(Value(2.0));
  state.Add(Value(4.0));
  state.Add(Value(9.0));
  Value avg = state.Finalize(AggregateFunction::kAvg);
  EXPECT_DOUBLE_EQ(avg.AsDouble(), 5.0);
}

TEST(AggregateStateTest, AvgOfNothingIsNull) {
  AggregateState state;
  EXPECT_TRUE(state.Finalize(AggregateFunction::kAvg).is_null());
}

TEST(AggregateStateTest, MinMax) {
  AggregateState state;
  state.Add(Value(int64_t{5}));
  state.Add(Value(int64_t{2}));
  state.Add(Value(int64_t{8}));
  EXPECT_EQ(state.Finalize(AggregateFunction::kMin), Value(int64_t{2}));
  EXPECT_EQ(state.Finalize(AggregateFunction::kMax), Value(int64_t{8}));
}

TEST(AggregateStateTest, MergeCombines) {
  AggregateState a;
  a.Add(Value(int64_t{1}));
  a.Add(Value(int64_t{2}));
  AggregateState b;
  b.Add(Value(int64_t{10}));
  a.Merge(b);
  EXPECT_EQ(a.Finalize(AggregateFunction::kSum), Value(int64_t{13}));
  EXPECT_EQ(a.Finalize(AggregateFunction::kCount), Value(int64_t{3}));
  EXPECT_EQ(a.Finalize(AggregateFunction::kMin), Value(int64_t{1}));
  EXPECT_EQ(a.Finalize(AggregateFunction::kMax), Value(int64_t{10}));
}

TEST(AggregateStateTest, SubtractUndoesAdd) {
  AggregateState total;
  total.Add(Value(int64_t{5}));
  total.Add(Value(int64_t{7}));
  AggregateState removed;
  removed.Add(Value(int64_t{7}));
  total.Subtract(removed);
  EXPECT_EQ(total.Finalize(AggregateFunction::kSum), Value(int64_t{5}));
  EXPECT_EQ(total.Finalize(AggregateFunction::kCount), Value(int64_t{1}));
}

TEST(GroupKeyTest, EqualityAndHash) {
  GroupKey a{{Value(int64_t{1}), Value("x")}};
  GroupKey b{{Value(int64_t{1}), Value("x")}};
  GroupKey c{{Value(int64_t{1}), Value("y")}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(GroupKeyHash()(a), GroupKeyHash()(b));
  EXPECT_EQ(a.ToString(), "(1, 'x')");
}

TEST(AggregateResultTest, AccumulateGroups) {
  AggregateResult result(1);
  result.Accumulate(Key(1), {Value(int64_t{10})});
  result.Accumulate(Key(1), {Value(int64_t{5})});
  result.Accumulate(Key(2), {Value(int64_t{3})});
  EXPECT_EQ(result.num_groups(), 2u);
  auto rows = result.Rows({AggregateFunction::kSum});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<Value>{Value(int64_t{1}),
                                         Value(int64_t{15})}));
  EXPECT_EQ(rows[1], (std::vector<Value>{Value(int64_t{2}),
                                         Value(int64_t{3})}));
}

TEST(AggregateResultTest, MergeFromIsUnion) {
  AggregateResult a(1);
  a.Accumulate(Key(1), {Value(int64_t{1})});
  AggregateResult b(1);
  b.Accumulate(Key(1), {Value(int64_t{2})});
  b.Accumulate(Key(2), {Value(int64_t{5})});
  a.MergeFrom(b);
  EXPECT_EQ(a.num_groups(), 2u);
  auto rows = a.Rows({AggregateFunction::kSum});
  EXPECT_EQ(rows[0][1], Value(int64_t{3}));
  EXPECT_EQ(rows[1][1], Value(int64_t{5}));
}

TEST(AggregateResultTest, SubtractRemovesEmptyGroups) {
  AggregateResult total(1);
  total.Accumulate(Key(1), {Value(int64_t{10})});
  total.Accumulate(Key(2), {Value(int64_t{20})});
  AggregateResult removed(1);
  removed.Accumulate(Key(2), {Value(int64_t{20})});
  ASSERT_TRUE(total.SubtractFrom(removed).ok());
  EXPECT_EQ(total.num_groups(), 1u);
  EXPECT_TRUE(total.groups().contains(Key(1)));
  EXPECT_FALSE(total.groups().contains(Key(2)));
}

TEST(AggregateResultTest, SubtractDetectsUnderflow) {
  AggregateResult total(1);
  total.Accumulate(Key(1), {Value(int64_t{10})});
  AggregateResult removed(1);
  removed.Accumulate(Key(1), {Value(int64_t{10})});
  removed.Accumulate(Key(1), {Value(int64_t{10})});
  EXPECT_EQ(total.SubtractFrom(removed).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AggregateResultTest, SubtractMissingGroupFails) {
  AggregateResult total(1);
  total.Accumulate(Key(1), {Value(int64_t{10})});
  AggregateResult removed(1);
  removed.Accumulate(Key(9), {Value(int64_t{1})});
  EXPECT_EQ(total.SubtractFrom(removed).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AggregateResultTest, SubtractArityMismatch) {
  AggregateResult a(1);
  AggregateResult b(2);
  EXPECT_EQ(a.SubtractFrom(b).code(), StatusCode::kInvalidArgument);
}

TEST(AggregateResultTest, ApproxEquals) {
  AggregateResult a(1);
  a.Accumulate(Key(1), {Value(1.0)});
  AggregateResult b(1);
  b.Accumulate(Key(1), {Value(1.0 + 1e-12)});
  std::string diff;
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9, &diff)) << diff;
  AggregateResult c(1);
  c.Accumulate(Key(1), {Value(2.0)});
  EXPECT_FALSE(a.ApproxEquals(c, 1e-9, &diff));
  EXPECT_FALSE(diff.empty());
}

TEST(AggregateResultTest, ApproxEqualsDetectsGroupDifferences) {
  AggregateResult a(1);
  a.Accumulate(Key(1), {Value(int64_t{1})});
  AggregateResult b(1);
  b.Accumulate(Key(2), {Value(int64_t{1})});
  EXPECT_FALSE(a.ApproxEquals(b));
  AggregateResult c(1);
  EXPECT_FALSE(a.ApproxEquals(c));
}

TEST(AggregateResultTest, MixedSumAndCountStar) {
  AggregateResult result(2);
  result.Accumulate(Key(1), {Value(2.5), Value()});
  result.Accumulate(Key(1), {Value(0.5), Value()});
  auto rows = result.Rows(
      {AggregateFunction::kSum, AggregateFunction::kCountStar});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 3.0);
  EXPECT_EQ(rows[0][2], Value(int64_t{2}));
}

TEST(AggregateResultTest, ByteSizeGrowsWithGroups) {
  AggregateResult small(1);
  small.Accumulate(Key(1), {Value(int64_t{1})});
  AggregateResult large(1);
  for (int64_t g = 0; g < 100; ++g) {
    large.Accumulate(Key(g), {Value(int64_t{1})});
  }
  EXPECT_GT(large.ByteSize(), small.ByteSize());
}

}  // namespace
}  // namespace aggcache
