#include "cache/maintenance.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/mixed_workload.h"

namespace aggcache {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    cache_ = std::make_unique<AggregateCacheManager>(&db_);
    for (int64_t h = 1; h <= 5; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2013, 2, 10.0, &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
    query_ = QueryBuilder()
                 .From("Item")
                 .GroupBy("Item", "HeaderID")
                 .Sum("Item", "Amount", "total")
                 .CountStar("n")
                 .Build();
  }

  Status InsertItem(int64_t header_id, double amount) {
    Transaction txn = db_.Begin();
    return item_->Insert(
        txn, {Value(next_item_id_++), Value(header_id), Value(amount)});
  }

  AggregateResult Expected() {
    Executor executor(&db_);
    auto result = executor.ExecuteUncached(
        query_, db_.txn_manager().GlobalSnapshot());
    AGGCACHE_CHECK(result.ok());
    return std::move(result).value();
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  std::unique_ptr<AggregateCacheManager> cache_;
  int64_t next_item_id_ = 1;
  AggregateQuery query_;
};

class MaintenanceStrategyTest
    : public MaintenanceTest,
      public ::testing::WithParamInterface<MaintenanceStrategy> {};

// Every strategy must produce the correct result through a sequence of
// inserts and queries.
TEST_P(MaintenanceStrategyTest, StaysConsistentUnderInserts) {
  auto view_or = CreateMaterializedAggregate(GetParam(), &db_, query_,
                                             cache_.get());
  ASSERT_TRUE(view_or.ok()) << view_or.status();
  std::unique_ptr<MaterializedAggregate> view = std::move(view_or).value();

  for (int round = 0; round < 5; ++round) {
    ASSERT_OK(InsertItem(/*header_id=*/round % 5 + 1, 1.5));
    ASSERT_OK(view->OnInsertCommitted());
    Transaction txn = db_.Begin();
    auto result = view->Query(txn);
    ASSERT_TRUE(result.ok()) << result.status();
    std::string diff;
    EXPECT_TRUE(result->ApproxEquals(Expected(), 1e-9, &diff))
        << MaintenanceStrategyToString(GetParam()) << " round " << round
        << ": " << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, MaintenanceStrategyTest,
    ::testing::Values(MaintenanceStrategy::kEagerIncremental,
                      MaintenanceStrategy::kLazyIncremental,
                      MaintenanceStrategy::kAggregateCache,
                      MaintenanceStrategy::kFullRecompute),
    [](const ::testing::TestParamInfo<MaintenanceStrategy>& info) {
      std::string name = MaintenanceStrategyToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_F(MaintenanceTest, LazyDefersWorkUntilQuery) {
  auto view_or = CreateMaterializedAggregate(
      MaintenanceStrategy::kLazyIncremental, &db_, query_, nullptr);
  ASSERT_TRUE(view_or.ok());
  auto view = std::move(view_or).value();
  // Inserts are free for the lazy view; results still correct at query.
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(InsertItem(1, 2.0));
    ASSERT_OK(view->OnInsertCommitted());
  }
  Transaction txn = db_.Begin();
  auto result = view->Query(txn);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(Expected(), 1e-9));
}

TEST_F(MaintenanceTest, JoinQueryRejected) {
  auto view = CreateMaterializedAggregate(
      MaintenanceStrategy::kEagerIncremental, &db_,
      testing_util::HeaderItemQuery(), nullptr);
  EXPECT_FALSE(view.ok());
}

TEST_F(MaintenanceTest, AggregateCacheStrategyRequiresManager) {
  auto view = CreateMaterializedAggregate(
      MaintenanceStrategy::kAggregateCache, &db_, query_, nullptr);
  EXPECT_FALSE(view.ok());
}

TEST_F(MaintenanceTest, MixedWorkloadDriverRunsAllStrategies) {
  MixedWorkloadConfig config;
  config.num_operations = 60;
  config.insert_ratio = 0.5;
  for (MaintenanceStrategy strategy :
       {MaintenanceStrategy::kEagerIncremental,
        MaintenanceStrategy::kLazyIncremental,
        MaintenanceStrategy::kAggregateCache}) {
    auto result = RunMixedWorkload(
        &db_, query_, strategy, cache_.get(), config, [&](Rng& rng) {
          return InsertItem(rng.UniformInt(1, 5),
                            rng.UniformDouble(1.0, 10.0));
        });
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->inserts + result->queries, config.num_operations);
    EXPECT_GT(result->inserts, 0u);
    EXPECT_GT(result->queries, 0u);
    EXPECT_GT(result->total_ms, 0.0);
  }
}

TEST_F(MaintenanceTest, StrategyNames) {
  EXPECT_STREQ(
      MaintenanceStrategyToString(MaintenanceStrategy::kEagerIncremental),
      "eager-incremental");
  EXPECT_STREQ(
      MaintenanceStrategyToString(MaintenanceStrategy::kLazyIncremental),
      "lazy-incremental");
  EXPECT_STREQ(
      MaintenanceStrategyToString(MaintenanceStrategy::kAggregateCache),
      "aggregate-cache");
  EXPECT_STREQ(
      MaintenanceStrategyToString(MaintenanceStrategy::kFullRecompute),
      "full-recompute");
}

}  // namespace
}  // namespace aggcache
