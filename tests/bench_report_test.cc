// Tests for the structured benchmark report (src/obs/bench_report.h):
// nearest-rank latency summaries, the BENCH_*.json schema (golden —
// tools/bench_diff and CI parse these files), and the BenchContext flag
// grammar shared by every bench binary.

#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/bench_report.h"
#include "obs/engine_metrics.h"
#include "obs/metrics_registry.h"

namespace aggcache {
namespace {

TEST(SummarizeLatenciesTest, NearestRankQuantiles) {
  LatencyStats stats = SummarizeLatencies({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(stats.reps, 5);
  EXPECT_DOUBLE_EQ(stats.p5_ms, 1.0);
  EXPECT_DOUBLE_EQ(stats.median_ms, 3.0);
  EXPECT_DOUBLE_EQ(stats.p95_ms, 5.0);
}

TEST(SummarizeLatenciesTest, SingleAndEmptyInputs) {
  LatencyStats one = SummarizeLatencies({7.5});
  EXPECT_EQ(one.reps, 1);
  EXPECT_DOUBLE_EQ(one.p5_ms, 7.5);
  EXPECT_DOUBLE_EQ(one.median_ms, 7.5);
  EXPECT_DOUBLE_EQ(one.p95_ms, 7.5);

  LatencyStats none = SummarizeLatencies({});
  EXPECT_EQ(none.reps, 0);
  EXPECT_DOUBLE_EQ(none.median_ms, 0.0);
}

TEST(BenchReportTest, JsonSchemaGolden) {
  // Byte-exact golden of the v1 schema. tools/bench_diff, the CI perf job
  // and any dashboards parse this format — change it only with a version
  // bump and a matching bench_diff update.
  BenchReport report("unit_scenario");
  report.SetConfig("threads", int64_t{4});
  report.SetConfig("quick", true);
  LatencyStats stats;
  stats.p5_ms = 1.25;
  stats.median_ms = 2.5;
  stats.p95_ms = 4.75;
  stats.reps = 5;
  report.AddLatency("query_ms", {{"strategy", "uncached"}, {"year", "2013"}},
                    stats);
  report.AddScalar("cache_bytes", {}, 4096.0, "bytes");
  // No SnapshotMetricsBaseline/CaptureMetricsDelta: metrics_delta renders
  // empty, keeping this golden independent of other tests' registry noise.
  EXPECT_EQ(report.ToJson(),
            "{\"schema_version\":1,"
            "\"scenario\":\"unit_scenario\","
            "\"config\":{\"quick\":\"true\",\"threads\":\"4\"},"
            "\"samples\":["
            "{\"name\":\"query_ms\","
            "\"labels\":{\"strategy\":\"uncached\",\"year\":\"2013\"},"
            "\"kind\":\"latency\",\"reps\":5,"
            "\"p5_ms\":1.25,\"median_ms\":2.5,\"p95_ms\":4.75},"
            "{\"name\":\"cache_bytes\",\"labels\":{},"
            "\"kind\":\"scalar\",\"value\":4096,\"unit\":\"bytes\"}"
            "],"
            "\"metrics_delta\":{}}");
}

TEST(BenchReportTest, MetricsDeltaOmitsUnchangedMetrics) {
  // The delta spans baseline..capture; metrics untouched in between must
  // not clutter the report. Engine metrics are reused rather than
  // registering test-only names: EngineMetricsTest.SchemaGolden asserts
  // the global registry's exact metric set.
  const EngineMetrics& metrics = EngineMetrics::Get();

  BenchReport report("delta_scenario");
  report.SnapshotMetricsBaseline();
  metrics.cache_lookups->Increment(3);
  report.CaptureMetricsDelta();

  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"aggcache_cache_lookups_total\":"
                      "{\"kind\":\"counter\",\"delta\":3}"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("aggcache_cache_evictions_total"), std::string::npos)
      << json;
}

TEST(BenchContextTest, ParsesJsonAndQuickFlags) {
  const char* argv[] = {"bench", "--quick", "--json=/tmp/out/", "--other"};
  BenchContext ctx(4, const_cast<char**>(argv), "ctx_scenario");
  EXPECT_TRUE(ctx.quick());
  EXPECT_TRUE(ctx.json_requested());
  EXPECT_EQ(ctx.json_path(), "/tmp/out/BENCH_ctx_scenario.json");
  EXPECT_EQ(ctx.QuickOr(1, 100), 1);
}

TEST(BenchContextTest, BareJsonFlagUsesWorkingDirectory) {
  const char* argv[] = {"bench", "--json"};
  BenchContext ctx(2, const_cast<char**>(argv), "cwd_scenario");
  EXPECT_EQ(ctx.json_path(), "BENCH_cwd_scenario.json");
  EXPECT_FALSE(ctx.quick());
  EXPECT_EQ(ctx.QuickOr(1, 100), 100);
}

TEST(BenchContextTest, EnvironmentDrivesFlagsAndArgvWins) {
  setenv("AGGCACHE_BENCH_JSON", "/tmp/envdir/", 1);
  setenv("AGGCACHE_BENCH_QUICK", "1", 1);
  {
    const char* argv[] = {"bench"};
    BenchContext ctx(1, const_cast<char**>(argv), "env_scenario");
    EXPECT_TRUE(ctx.quick());
    EXPECT_EQ(ctx.json_path(), "/tmp/envdir/BENCH_env_scenario.json");
  }
  {
    // Explicit argv overrides the environment's directory.
    const char* argv[] = {"bench", "--json=exact.json"};
    BenchContext ctx(2, const_cast<char**>(argv), "env_scenario");
    EXPECT_EQ(ctx.json_path(), "exact.json");
  }
  setenv("AGGCACHE_BENCH_JSON", "off", 1);
  {
    const char* argv[] = {"bench"};
    BenchContext ctx(1, const_cast<char**>(argv), "env_scenario");
    EXPECT_FALSE(ctx.json_requested());
  }
  unsetenv("AGGCACHE_BENCH_JSON");
  unsetenv("AGGCACHE_BENCH_QUICK");
}

TEST(BenchContextTest, RepsOverrideFromEnvironment) {
  const char* argv[] = {"bench", "--quick"};
  {
    BenchContext ctx(2, const_cast<char**>(argv), "reps_scenario");
    EXPECT_EQ(ctx.Reps(3, 50), 3);
  }
  setenv("AGGCACHE_BENCH_REPS", "21", 1);
  {
    // The override wins in both quick and full protocols.
    BenchContext quick_ctx(2, const_cast<char**>(argv), "reps_scenario");
    EXPECT_EQ(quick_ctx.Reps(3, 50), 21);
    const char* full_argv[] = {"bench"};
    BenchContext full_ctx(1, const_cast<char**>(full_argv), "reps_scenario");
    EXPECT_EQ(full_ctx.Reps(3, 50), 21);
  }
  unsetenv("AGGCACHE_BENCH_REPS");
}

}  // namespace
}  // namespace aggcache
