// Tests for the metrics-history ring (src/obs/metrics_history.h): bounded
// snapshot retention, the /metrics/history JSON schema, env parsing, and
// sampler thread start/stop hygiene.

#include "obs/metrics_history.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "gtest/gtest.h"
#include "obs/engine_metrics.h"
#include "obs/metrics_registry.h"

namespace aggcache {
namespace {

class MetricsHistoryTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsHistory::Global().ResetForTest(); }
  void TearDown() override {
    MetricsHistory::Global().ResetForTest();
    ::unsetenv("AGGCACHE_METRICS_HISTORY");
  }
};

TEST_F(MetricsHistoryTest, SampleOnceCapturesTheRegistry) {
  EngineMetrics::Get().cache_lookups->Increment();
  MetricsHistory& history = MetricsHistory::Global();
  EXPECT_EQ(history.size(), 0u);
  history.SampleOnce();
  EXPECT_EQ(history.size(), 1u);
  std::string dump = history.DumpJson();
  EXPECT_NE(dump.find("\"schema\":\"aggcache-metrics-history-v1\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"t_ms\":"), std::string::npos);
  EXPECT_NE(dump.find("\"aggcache_cache_lookups_total\":"),
            std::string::npos)
      << dump.substr(0, 400);
}

TEST_F(MetricsHistoryTest, RingTrimsToCapacity) {
  MetricsHistory& history = MetricsHistory::Global();
  // Capacity is applied by the sampler against options_; set via Start with
  // an effectively-inert period, then drive samples manually.
  MetricsHistory::Options options;
  options.period_ms = 3600 * 1000;
  options.capacity = 2;
  history.Start(options);
  for (int i = 0; i < 5; ++i) history.SampleOnce();
  EXPECT_EQ(history.size(), 2u);
  history.Stop();
}

TEST_F(MetricsHistoryTest, OptionsFromEnvParsesPeriodAndCapacity) {
  ::setenv("AGGCACHE_METRICS_HISTORY", "250,capacity=32", 1);
  MetricsHistory::Options options = MetricsHistory::OptionsFromEnv();
  EXPECT_EQ(options.period_ms, 250);
  EXPECT_EQ(options.capacity, 32u);

  ::setenv("AGGCACHE_METRICS_HISTORY", "garbage", 1);
  options = MetricsHistory::OptionsFromEnv();
  EXPECT_EQ(options.period_ms, 1000) << "malformed spec keeps defaults";
  EXPECT_EQ(options.capacity, 256u);

  ::unsetenv("AGGCACHE_METRICS_HISTORY");
  options = MetricsHistory::OptionsFromEnv();
  EXPECT_EQ(options.period_ms, 1000);
}

TEST_F(MetricsHistoryTest, SamplerThreadCollectsAndStops) {
  MetricsHistory& history = MetricsHistory::Global();
  MetricsHistory::Options options;
  options.period_ms = 5;
  options.capacity = 64;
  history.Start(options);
  EXPECT_TRUE(history.running());
  history.Start(options);  // Idempotent: no second thread.
  // Wait for at least one periodic sample, bounded to keep CI honest.
  for (int i = 0; i < 400 && history.size() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(history.size(), 0u);
  history.Stop();
  EXPECT_FALSE(history.running());
  history.Stop();  // Idempotent.
  size_t after_stop = history.size();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(history.size(), after_stop) << "sampler kept running past Stop";
}

TEST_F(MetricsHistoryTest, HistogramsSnapshotAsCountAndSum) {
  EngineMetrics::Get().cache_build_us->Observe(100);
  MetricsHistory& history = MetricsHistory::Global();
  history.SampleOnce();
  std::string dump = history.DumpJson();
  size_t at = dump.find("\"aggcache_cache_build_us\":{\"count\":");
  EXPECT_NE(at, std::string::npos) << dump.substr(0, 400);
}

}  // namespace
}  // namespace aggcache
