#include "sql/tokenizer.h"

#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(TokenizerTest, EmptyInput) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_TRUE((*tokens)[0].Is(TokenType::kEnd));
}

TEST(TokenizerTest, IdentifiersAndKeywords) {
  auto tokens = Tokenize("SELECT revenue FROM sales_2024");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].text, "revenue");
  EXPECT_TRUE((*tokens)[2].IsKeyword("FROM"));
  EXPECT_EQ((*tokens)[3].text, "sales_2024");
}

TEST(TokenizerTest, NumberLiterals) {
  auto tokens = Tokenize("42 -17 3.5 -0.25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].Is(TokenType::kInteger));
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_TRUE((*tokens)[1].Is(TokenType::kInteger));
  EXPECT_EQ((*tokens)[1].text, "-17");
  EXPECT_TRUE((*tokens)[2].Is(TokenType::kDouble));
  EXPECT_EQ((*tokens)[2].text, "3.5");
  EXPECT_TRUE((*tokens)[3].Is(TokenType::kDouble));
  EXPECT_EQ((*tokens)[3].text, "-0.25");
}

TEST(TokenizerTest, StringLiterals) {
  auto tokens = Tokenize("'ENG' 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].Is(TokenType::kString));
  EXPECT_EQ((*tokens)[0].text, "ENG");
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(TokenizerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(TokenizerTest, OperatorsAndPunctuation) {
  auto tokens = Tokenize("a = b <> c <= d >= e < f > g (h, i.*);");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> symbols;
  for (const Token& t : *tokens) {
    if (t.Is(TokenType::kSymbol)) symbols.push_back(t.text);
  }
  EXPECT_EQ(symbols, (std::vector<std::string>{"=", "<>", "<=", ">=", "<",
                                               ">", "(", ",", ".", "*", ")",
                                               ";"}));
}

TEST(TokenizerTest, BangEqualsNormalizedToNotEquals) {
  auto tokens = Tokenize("a != b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<>"));
}

TEST(TokenizerTest, LineCommentsSkipped) {
  auto tokens = Tokenize("SELECT -- the select keyword\n1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].text, "1");
}

TEST(TokenizerTest, StrayCharacterFails) {
  auto result = Tokenize("SELECT @");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unexpected character"),
            std::string::npos);
}

TEST(TokenizerTest, PositionsTrackSource) {
  auto tokens = Tokenize("ab  cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 4u);
}

}  // namespace
}  // namespace aggcache
