#include "cache/compensation.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class CompensationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
    for (int64_t h = 1; h <= 6; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, h <= 3 ? 2013 : 2014, 2, 10.0,
          &next_item_id_));
    }
    ASSERT_OK(db_.MergeTables({"Header", "Item"}));
    // Two new business objects in the deltas.
    for (int64_t h = 7; h <= 8; ++h) {
      ASSERT_OK(testing_util::InsertBusinessObject(
          &db_, header_, item_, h, 2014, 2, 5.0, &next_item_id_));
    }
  }

  Snapshot Now() { return db_.txn_manager().GlobalSnapshot(); }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  int64_t next_item_id_ = 1;
};

TEST_F(CompensationTest, DeltaCompensationCompletesTheCachedResult) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  Executor executor(&db_);

  // Cached part: the all-main subjoin.
  SubjoinCombination all_main = {{0, PartitionKind::kMain},
                                 {0, PartitionKind::kMain}};
  auto cached = executor.ExecuteSubjoin(*bound, all_main, Now());
  ASSERT_TRUE(cached.ok());

  std::vector<MdBinding> mds = ResolveMds(*bound);
  JoinPruner pruner(&db_, PruneLevel::kFull);
  CompensationStats stats;
  auto delta = DeltaCompensate(executor, *bound, mds, pruner,
                               /*use_pushdown=*/false, Now(), &stats);
  ASSERT_TRUE(delta.ok());

  AggregateResult combined = *cached;
  combined.MergeFrom(*delta);
  auto uncached = executor.ExecuteUncached(query, Now());
  ASSERT_TRUE(uncached.ok());
  std::string diff;
  EXPECT_TRUE(combined.ApproxEquals(*uncached, 1e-9, &diff)) << diff;

  // Stats add up: 3 compensation combos considered, 2 prunable (perfect
  // temporal locality), 1 executed.
  EXPECT_EQ(stats.subjoins_considered, 3u);
  EXPECT_EQ(stats.subjoins_pruned, 2u);
  EXPECT_EQ(stats.subjoins_executed, 1u);
}

TEST_F(CompensationTest, PushdownDoesNotChangeDeltaCompensation) {
  // Add a late item so a main x delta subjoin survives pruning.
  Transaction txn = db_.Begin();
  ASSERT_OK(item_->Insert(
      txn, {Value(next_item_id_++), Value(int64_t{1}), Value(3.0)}));

  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  Executor executor(&db_);
  std::vector<MdBinding> mds = ResolveMds(*bound);

  JoinPruner pruner_a(&db_, PruneLevel::kFull);
  auto plain = DeltaCompensate(executor, *bound, mds, pruner_a, false,
                               Now(), nullptr);
  JoinPruner pruner_b(&db_, PruneLevel::kFull);
  auto pushed = DeltaCompensate(executor, *bound, mds, pruner_b, true,
                                Now(), nullptr);
  ASSERT_TRUE(plain.ok() && pushed.ok());
  std::string diff;
  EXPECT_TRUE(plain->ApproxEquals(*pushed, 1e-9, &diff)) << diff;
}

TEST_F(CompensationTest, RowsContributionMatchesFilters) {
  AggregateQuery query = QueryBuilder()
                             .From("Item")
                             .Filter("Item", "Amount", CompareOp::kGt,
                                     Value(7.0))
                             .GroupBy("Item", "HeaderID")
                             .Sum("Item", "Amount", "s")
                             .CountStar("n")
                             .Build();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());

  // Contribution of the first three main rows (amount 10.0, passing the
  // filter).
  std::vector<uint32_t> rows = {0, 1, 2};
  auto contribution = ComputeRowsContribution(*bound, 0, rows);
  ASSERT_TRUE(contribution.ok());
  int64_t total = 0;
  for (const auto& [key, entry] : contribution->groups()) {
    total += entry.count_star;
  }
  EXPECT_EQ(total, 3);

  // With a filter nothing passes (amounts in delta are 5.0 <= 7.0): rows
  // from the delta would not contribute, but here we check main rows only.
  AggregateQuery strict = QueryBuilder()
                              .From("Item")
                              .Filter("Item", "Amount", CompareOp::kGt,
                                      Value(100.0))
                              .GroupBy("Item", "HeaderID")
                              .Sum("Item", "Amount", "s")
                              .Build();
  auto strict_bound = BoundQuery::Bind(db_, strict);
  ASSERT_TRUE(strict_bound.ok());
  auto empty = ComputeRowsContribution(*strict_bound, 0, rows);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(CompensationTest, RowsContributionRejectsJoins) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  std::vector<uint32_t> rows = {0};
  EXPECT_FALSE(ComputeRowsContribution(*bound, 0, rows).ok());
}

TEST_F(CompensationTest, RestrictedSubjoinSeesOnlyGivenRows) {
  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  Executor executor(&db_);
  SubjoinCombination all_main = {{0, PartitionKind::kMain},
                                 {0, PartitionKind::kMain}};
  // Restrict Header to its first main row: only that header's items join.
  Executor::RowRestriction restriction;
  restriction.rows.resize(2);
  restriction.rows[0] = std::vector<uint32_t>{0};
  auto result = executor.ExecuteSubjoin(*bound, all_main, Now(), {},
                                        &restriction);
  ASSERT_TRUE(result.ok());
  int64_t total = 0;
  for (const auto& [key, entry] : result->groups()) {
    total += entry.count_star;
  }
  EXPECT_EQ(total, 2);  // Two items per header.
}

TEST_F(CompensationTest, RestrictionBypassesVisibilityWhenAsked) {
  // Delete a header in main; under the current snapshot it is invisible,
  // but a bypassing restriction can still join it (the negative-delta
  // correction case).
  Transaction txn = db_.Begin();
  auto loc = header_->FindByPk(Value(int64_t{2}));
  ASSERT_TRUE(loc.has_value());
  uint32_t deleted_row = loc->row;
  ASSERT_OK(header_->DeleteByPk(txn, Value(int64_t{2})));

  AggregateQuery query = testing_util::HeaderItemQuery();
  auto bound = BoundQuery::Bind(db_, query);
  ASSERT_TRUE(bound.ok());
  Executor executor(&db_);
  SubjoinCombination all_main = {{0, PartitionKind::kMain},
                                 {0, PartitionKind::kMain}};

  Executor::RowRestriction no_bypass;
  no_bypass.rows.resize(2);
  no_bypass.rows[0] = std::vector<uint32_t>{deleted_row};
  auto hidden = executor.ExecuteSubjoin(*bound, all_main, Now(), {},
                                        &no_bypass);
  ASSERT_TRUE(hidden.ok());
  EXPECT_TRUE(hidden->empty());

  Executor::RowRestriction bypass = no_bypass;
  bypass.bypass_visibility_for_restricted = true;
  auto visible = executor.ExecuteSubjoin(*bound, all_main, Now(), {},
                                         &bypass);
  ASSERT_TRUE(visible.ok());
  EXPECT_FALSE(visible->empty());
}

}  // namespace
}  // namespace aggcache
