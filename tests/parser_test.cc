#include "sql/parser.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateHeaderItemTables(&db_, &header_, &item_);
  }

  StatusOr<ParsedStatement> Parse(const std::string& sql) {
    return ParseStatement(sql, db_);
  }

  Database db_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
};

TEST_F(ParserTest, SimpleAggregateSelect) {
  auto stmt = Parse(
      "SELECT FiscalYear, SUM(Amount) AS revenue, COUNT(*) AS n "
      "FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID "
      "GROUP BY FiscalYear");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, ParsedStatement::Kind::kSelect);
  const AggregateQuery& q = stmt->select;
  ASSERT_EQ(q.tables.size(), 2u);
  EXPECT_EQ(q.tables[0].table_name, "Header");
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.joins[0].left_table, 0u);
  EXPECT_EQ(q.joins[0].right_table, 1u);
  ASSERT_EQ(q.group_by.size(), 1u);
  EXPECT_EQ(q.group_by[0].table_index, 0u);  // FiscalYear is Header's.
  ASSERT_EQ(q.aggregates.size(), 2u);
  EXPECT_EQ(q.aggregates[0].fn, AggregateFunction::kSum);
  EXPECT_EQ(q.aggregates[0].output_name, "revenue");
  EXPECT_EQ(q.aggregates[1].fn, AggregateFunction::kCountStar);
}

TEST_F(ParserTest, FiltersWithCoercion) {
  auto stmt = Parse(
      "SELECT SUM(Amount) FROM Item "
      "WHERE Amount > 10 AND HeaderID <> 5 GROUP BY HeaderID");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const AggregateQuery& q = stmt->select;
  ASSERT_EQ(q.filters.size(), 2u);
  // Amount is a DOUBLE column: the integer literal 10 was coerced.
  EXPECT_TRUE(q.filters[0].operand.is_double());
  EXPECT_EQ(q.filters[0].op, CompareOp::kGt);
  EXPECT_TRUE(q.filters[1].operand.is_int64());
  EXPECT_EQ(q.filters[1].op, CompareOp::kNe);
}

TEST_F(ParserTest, QualifiedAndUnqualifiedColumns) {
  auto stmt = Parse(
      "SELECT Header.FiscalYear, AVG(Item.Amount) AS a FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY Header.FiscalYear");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->select.aggregates[0].table_index, 1u);
}

TEST_F(ParserTest, AmbiguousColumnRejected) {
  // HeaderID exists in both tables.
  auto stmt = Parse(
      "SELECT SUM(Amount) FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY HeaderID");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(ParserTest, UnknownColumnRejected) {
  EXPECT_FALSE(Parse("SELECT SUM(Nope) FROM Item GROUP BY HeaderID").ok());
}

TEST_F(ParserTest, BareColumnMustBeGrouped) {
  auto stmt = Parse(
      "SELECT Amount, COUNT(*) FROM Item GROUP BY HeaderID");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(ParserTest, SelectWithoutAggregateRejected) {
  EXPECT_FALSE(Parse("SELECT HeaderID FROM Item GROUP BY HeaderID").ok());
}

TEST_F(ParserTest, JoinMustUseEquality) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM Header, Item "
      "WHERE Header.HeaderID < Item.HeaderID GROUP BY FiscalYear");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("'='"), std::string::npos);
}

TEST_F(ParserTest, CountStarOnlyForCount) {
  EXPECT_FALSE(Parse("SELECT SUM(*) FROM Item GROUP BY HeaderID").ok());
}

TEST_F(ParserTest, ParsedSelectExecutes) {
  int64_t next_item = 1;
  for (int64_t h = 1; h <= 3; ++h) {
    ASSERT_OK(testing_util::InsertBusinessObject(&db_, header_, item_, h,
                                                 2013, 2, 10.0, &next_item));
  }
  auto stmt = Parse(
      "SELECT FiscalYear, SUM(Amount) AS revenue FROM Header, Item "
      "WHERE Header.HeaderID = Item.HeaderID GROUP BY FiscalYear;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  AggregateCacheManager cache(&db_);
  Transaction txn = db_.Begin();
  auto result = cache.Execute(stmt->select, txn);
  ASSERT_TRUE(result.ok());
  auto rows = result->Rows(stmt->select.AggregateFunctions());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 60.0);
}

TEST_F(ParserTest, ExplainAggregateSelect) {
  auto stmt = Parse(
      "EXPLAIN AGGREGATE SELECT FiscalYear, SUM(Amount) AS revenue "
      "FROM Header, Item WHERE Header.HeaderID = Item.HeaderID "
      "GROUP BY FiscalYear");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, ParsedStatement::Kind::kExplain);
  EXPECT_FALSE(stmt->explain_json);
  // The wrapped SELECT parses exactly as it would stand-alone.
  ASSERT_EQ(stmt->select.tables.size(), 2u);
  ASSERT_EQ(stmt->select.aggregates.size(), 1u);
  EXPECT_EQ(stmt->select.aggregates[0].output_name, "revenue");
}

TEST_F(ParserTest, ExplainAggregateJson) {
  auto stmt = Parse(
      "explain aggregate json SELECT COUNT(*) FROM Item GROUP BY HeaderID");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, ParsedStatement::Kind::kExplain);
  EXPECT_TRUE(stmt->explain_json);
}

TEST_F(ParserTest, ExplainRequiresAggregateSelect) {
  EXPECT_FALSE(Parse("EXPLAIN SELECT COUNT(*) FROM Item "
                     "GROUP BY HeaderID").ok());
  EXPECT_FALSE(Parse("EXPLAIN AGGREGATE INSERT INTO Header VALUES (1, 2)")
                   .ok());
  EXPECT_FALSE(Parse("EXPLAIN AGGREGATE").ok());
}

TEST_F(ParserTest, ApplyRejectsExplain) {
  auto stmt = Parse(
      "EXPLAIN AGGREGATE SELECT COUNT(*) FROM Item GROUP BY HeaderID");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_FALSE(ApplyStatement(*stmt, &db_).ok());
}

TEST_F(ParserTest, InsertStatement) {
  auto stmt = Parse("INSERT INTO Header VALUES (7, 2015)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, ParsedStatement::Kind::kInsert);
  EXPECT_EQ(stmt->insert_table, "Header");
  ASSERT_EQ(stmt->insert_values.size(), 2u);
  ASSERT_OK(ApplyStatement(*stmt, &db_));
  EXPECT_TRUE(header_->FindByPk(Value(int64_t{7})).has_value());
}

TEST_F(ParserTest, InsertCoercesToColumnTypes) {
  Transaction txn = db_.Begin();
  ASSERT_OK(header_->Insert(txn, {Value(int64_t{1}), Value(int64_t{2013})}));
  // Amount is DOUBLE; the integer 5 must be coerced.
  auto stmt = Parse("INSERT INTO Item VALUES (1, 1, 5)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->insert_values[2].is_double());
  ASSERT_OK(ApplyStatement(*stmt, &db_));
}

TEST_F(ParserTest, InsertArityChecked) {
  EXPECT_FALSE(Parse("INSERT INTO Header VALUES (1)").ok());
  EXPECT_FALSE(Parse("INSERT INTO Header VALUES (1, 2, 3)").ok());
}

TEST_F(ParserTest, InsertUnknownTable) {
  EXPECT_FALSE(Parse("INSERT INTO Nope VALUES (1)").ok());
}

TEST_F(ParserTest, CreateTableWithObjectAwareness) {
  auto stmt = Parse(
      "CREATE TABLE Warehouse ("
      "  WarehouseID BIGINT PRIMARY KEY,"
      "  Name VARCHAR(32),"
      "  OWN TID tid_Warehouse"
      ")");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, ParsedStatement::Kind::kCreateTable);
  ASSERT_OK(ApplyStatement(*stmt, &db_));

  auto movement = Parse(
      "CREATE TABLE Movement ("
      "  MovementID BIGINT PRIMARY KEY,"
      "  WarehouseID BIGINT REFERENCES Warehouse TID tid_Warehouse,"
      "  Quantity DOUBLE,"
      "  OWN TID tid_Movement"
      ")");
  ASSERT_TRUE(movement.ok()) << movement.status();
  const TableSchema& schema = movement->create_schema;
  ASSERT_EQ(schema.foreign_keys.size(), 1u);
  EXPECT_EQ(schema.foreign_keys[0].ref_table, "Warehouse");
  EXPECT_TRUE(schema.foreign_keys[0].tid_column.has_value());
  EXPECT_TRUE(schema.own_tid_column.has_value());
  ASSERT_OK(ApplyStatement(*movement, &db_));

  // The created tables behave object-aware end to end.
  Transaction txn = db_.Begin();
  Table* warehouse = db_.GetTable("Warehouse").value();
  Table* table = db_.GetTable("Movement").value();
  ASSERT_OK(warehouse->Insert(txn, {Value(int64_t{1}), Value("Main")}));
  ASSERT_OK(table->Insert(txn, {Value(int64_t{1}), Value(int64_t{1}),
                                Value(10.0)}));
  auto loc = table->FindByPk(Value(int64_t{1}));
  ASSERT_TRUE(loc.has_value());
  // tid_Warehouse column carries the warehouse row's tid.
  auto tid_col = table->schema().ColumnIndex("tid_Warehouse");
  ASSERT_TRUE(tid_col.ok());
  EXPECT_EQ(table->ValueAt(*loc, *tid_col),
            Value(static_cast<int64_t>(txn.tid())));
}

TEST_F(ParserTest, CreateTableBadSchemaReported) {
  // Duplicate column name must come back as a Status, not a crash.
  auto stmt = Parse("CREATE TABLE T (a BIGINT, a DOUBLE)");
  ASSERT_FALSE(stmt.ok());
}

TEST_F(ParserTest, GarbageRejected) {
  EXPECT_FALSE(Parse("DROP TABLE Header").ok());
  EXPECT_FALSE(Parse("SELECT FROM").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM Item GROUP BY HeaderID extra")
                   .ok());
}

TEST_F(ParserTest, ApplyRejectsSelect) {
  auto stmt = Parse("SELECT COUNT(*) FROM Item GROUP BY HeaderID");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(ApplyStatement(*stmt, &db_).ok());
}

}  // namespace
}  // namespace aggcache
