#include "common/bit_packed_vector.h"

#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace aggcache {
namespace {

TEST(BitPackedVectorTest, BitsForCardinality) {
  EXPECT_EQ(BitPackedVector::BitsForCardinality(0), 1);
  EXPECT_EQ(BitPackedVector::BitsForCardinality(1), 1);
  EXPECT_EQ(BitPackedVector::BitsForCardinality(2), 1);
  EXPECT_EQ(BitPackedVector::BitsForCardinality(3), 2);
  EXPECT_EQ(BitPackedVector::BitsForCardinality(4), 2);
  EXPECT_EQ(BitPackedVector::BitsForCardinality(5), 3);
  EXPECT_EQ(BitPackedVector::BitsForCardinality(1 << 20), 20);
  EXPECT_EQ(BitPackedVector::BitsForCardinality((1 << 20) + 1), 21);
}

TEST(BitPackedVectorTest, EmptyVector) {
  BitPackedVector v(7);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.bits_per_entry(), 7);
}

TEST(BitPackedVectorTest, WidthZeroPromotedToOne) {
  BitPackedVector v(0);
  EXPECT_EQ(v.bits_per_entry(), 1);
  v.PushBack(0);
  v.PushBack(1);
  EXPECT_EQ(v.Get(0), 0u);
  EXPECT_EQ(v.Get(1), 1u);
}

// Round-trip property: any sequence of values fitting the width comes back
// unchanged, for every width 1..32 (crossing word boundaries).
class BitPackedRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPackedRoundTripTest, RoundTrips) {
  int bits = GetParam();
  uint64_t mask = bits == 32 ? 0xffffffffULL : ((1ULL << bits) - 1);
  BitPackedVector v(bits);
  Rng rng(static_cast<uint64_t>(bits));
  std::vector<uint32_t> expected;
  for (int i = 0; i < 500; ++i) {
    uint32_t value = static_cast<uint32_t>(
        static_cast<uint64_t>(rng.UniformInt(0, int64_t{0xffffffff})) & mask);
    expected.push_back(value);
    v.PushBack(value);
  }
  ASSERT_EQ(v.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(v.Get(i), expected[i]) << "bits=" << bits << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackedRoundTripTest,
                         ::testing::Range(1, 33));

TEST(BitPackedVectorTest, MaxValuesAtEachWidth) {
  for (int bits = 1; bits <= 32; ++bits) {
    uint32_t max_value =
        bits == 32 ? 0xffffffffU : ((1U << bits) - 1);
    BitPackedVector v(bits);
    v.PushBack(max_value);
    v.PushBack(0);
    v.PushBack(max_value);
    EXPECT_EQ(v.Get(0), max_value) << bits;
    EXPECT_EQ(v.Get(1), 0u) << bits;
    EXPECT_EQ(v.Get(2), max_value) << bits;
  }
}

TEST(BitPackedVectorTest, CompressionBeatsPlainCodes) {
  // 1000 entries at 4 bits should use roughly 1/8 the space of 32-bit codes.
  BitPackedVector v(4);
  for (int i = 0; i < 1000; ++i) v.PushBack(static_cast<uint32_t>(i % 16));
  EXPECT_LE(v.ByteSize(), 1000u);  // ~500 bytes + slack.
}

}  // namespace
}  // namespace aggcache
