#include "workload/chbench.h"

#include "gtest/gtest.h"
#include "objectaware/matching_dependency.h"
#include "tests/test_util.h"

namespace aggcache {
namespace {

ChBenchConfig TinyConfig() {
  ChBenchConfig config;
  config.num_warehouses = 1;
  config.num_items = 50;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 5;
  config.orders_per_customer = 4;
  config.avg_orderlines_per_order = 3;
  return config;
}

class ChBenchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset_or = ChBenchDataset::Create(&db_, TinyConfig());
    ASSERT_TRUE(dataset_or.ok()) << dataset_or.status();
    dataset_ = std::make_unique<ChBenchDataset>(std::move(dataset_or).value());
  }

  Database db_;
  std::unique_ptr<ChBenchDataset> dataset_;
};

TEST_F(ChBenchTest, AllTablesPopulated) {
  for (const char* name :
       {"region", "nation", "supplier", "warehouse", "district", "customer",
        "item", "stock", "orders", "neworder", "orderline"}) {
    auto table = db_.GetTable(name);
    ASSERT_TRUE(table.ok()) << name;
    EXPECT_GT((*table)->TotalRows(), 0u) << name;
  }
}

TEST_F(ChBenchTest, DeltaFractionRespected) {
  auto orders = db_.GetTable("orders");
  ASSERT_TRUE(orders.ok());
  size_t main_rows = (*orders)->group(0).main.num_rows();
  size_t delta_rows = (*orders)->group(0).delta.num_rows();
  EXPECT_GT(delta_rows, 0u);
  double fraction = static_cast<double>(delta_rows) /
                    static_cast<double>(main_rows + delta_rows);
  EXPECT_NEAR(fraction, 0.05, 0.02);
}

TEST_F(ChBenchTest, MatchingDependenciesHold) {
  for (auto [ref, fk] :
       std::vector<std::pair<const char*, const char*>>{
           {"customer", "orders"},
           {"orders", "neworder"},
           {"orders", "orderline"},
           {"stock", "orderline"}}) {
    auto holds = VerifyMdHolds(db_, ref, fk);
    ASSERT_TRUE(holds.ok()) << ref << "->" << fk;
    EXPECT_TRUE(*holds) << ref << "->" << fk;
  }
}

TEST_F(ChBenchTest, QueriesValidateAndQualifyForCache) {
  for (auto& [number, query] : dataset_->AllQueries()) {
    EXPECT_OK(query.Validate(db_));
    EXPECT_TRUE(query.IsCacheable()) << "Q" << number;
    EXPECT_GE(query.tables.size(), 4u) << "Q" << number;
  }
}

TEST_F(ChBenchTest, QueriesReturnData) {
  Executor executor(&db_);
  for (auto& [number, query] : dataset_->AllQueries()) {
    auto result = executor.ExecuteUncached(
        query, db_.txn_manager().GlobalSnapshot());
    ASSERT_TRUE(result.ok()) << "Q" << number << ": " << result.status();
    EXPECT_GT(result->num_groups(), 0u) << "Q" << number;
  }
}

TEST_F(ChBenchTest, CachedStrategiesMatchUncached) {
  AggregateCacheManager cache(&db_);
  for (auto& [number, query] : dataset_->AllQueries()) {
    SCOPED_TRACE(number);
    testing_util::ExpectAllStrategiesAgree(&db_, &cache, query);
  }
}

TEST_F(ChBenchTest, SingleTableQueriesSupported) {
  AggregateCacheManager cache(&db_);
  for (AggregateQuery query : {dataset_->Q1(), dataset_->Q6()}) {
    EXPECT_OK(query.Validate(db_));
    EXPECT_TRUE(query.IsCacheable());
    EXPECT_EQ(query.tables.size(), 1u);
    testing_util::ExpectAllStrategiesAgree(&db_, &cache, query);
  }
}

TEST_F(ChBenchTest, Q1AveragesAreConsistent) {
  Executor executor(&db_);
  auto result = executor.ExecuteUncached(
      dataset_->Q1(), db_.txn_manager().GlobalSnapshot());
  ASSERT_TRUE(result.ok());
  // AVG equals SUM / COUNT(*) in every group (no NULLs in this engine).
  for (const auto& [key, entry] : result->groups()) {
    double sum = entry.states[0].sum_double;
    double avg = entry.states[1]
                     .Finalize(AggregateFunction::kAvg)
                     .AsDouble();
    EXPECT_NEAR(avg, sum / static_cast<double>(entry.count_star), 1e-9)
        << key.ToString();
  }
}

TEST_F(ChBenchTest, FullPruningSkipsMostSubjoins) {
  AggregateCacheManager cache(&db_);
  Transaction txn = db_.Begin();
  AggregateQuery q5 = dataset_->Q5();
  ExecutionOptions full;
  full.strategy = ExecutionStrategy::kCachedFullPruning;
  ASSERT_TRUE(cache.Execute(q5, txn, full).ok());  // Warm.
  ASSERT_TRUE(cache.Execute(q5, txn, full).ok());
  // Q5 joins 7 tables: 127 compensation subjoins; pruning must remove the
  // overwhelming majority.
  const CacheExecStats& stats = cache.last_exec_stats();
  EXPECT_EQ(stats.subjoins_executed + stats.subjoins_pruned, 127u);
  EXPECT_GT(stats.subjoins_pruned, 100u);
}

}  // namespace
}  // namespace aggcache
